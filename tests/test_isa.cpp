#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "isa/encoding.hpp"
#include "isa/exec.hpp"

namespace sfi::isa {
namespace {

TEST(Decode, StopWord) {
  const Instr in = decode(kStopWord);
  EXPECT_EQ(in.mn, Mnemonic::STOP);
  EXPECT_EQ(in.cls, InstrClass::System);
}

TEST(Decode, DFormRoundTrip) {
  const Instr in = decode(enc_d(kOpAddi, 3, 7, static_cast<u16>(-5)));
  EXPECT_EQ(in.mn, Mnemonic::ADDI);
  EXPECT_EQ(in.rt, 3);
  EXPECT_EQ(in.ra, 7);
  EXPECT_EQ(in.imm, -5);
  EXPECT_EQ(in.cls, InstrClass::FixedPoint);
}

TEST(Decode, LogicalImmediatesZeroExtend) {
  const Instr in = decode(enc_d(kOpOri, 1, 2, 0xFFFF));
  EXPECT_EQ(in.mn, Mnemonic::ORI);
  EXPECT_EQ(in.imm, 0xFFFF);
}

TEST(Decode, XFormRoundTrip) {
  const Instr in = decode(enc_x(4, 5, 6, kXoAdd));
  EXPECT_EQ(in.mn, Mnemonic::ADD);
  EXPECT_EQ(in.rt, 4);
  EXPECT_EQ(in.ra, 5);
  EXPECT_EQ(in.rb, 6);
  EXPECT_TRUE(in.writes_gpr());
}

TEST(Decode, CompareCrField) {
  const Instr in = decode(enc_x(5, 2, 3, kXoCmp));
  EXPECT_EQ(in.mn, Mnemonic::CMP);
  EXPECT_EQ(in.crf, 5);
  EXPECT_EQ(in.cls, InstrClass::Comparison);
}

TEST(Decode, BranchDisplacements) {
  const Instr b = decode(enc_i(-64, true));
  EXPECT_EQ(b.mn, Mnemonic::B);
  EXPECT_EQ(b.imm, -64);
  EXPECT_TRUE(b.lk);

  const Instr bc = decode(enc_b(kBoDnz, 0, 128, false));
  EXPECT_EQ(bc.mn, Mnemonic::BC);
  EXPECT_EQ(bc.bo, kBoDnz);
  EXPECT_EQ(bc.imm, 128);
  EXPECT_FALSE(bc.lk);
}

TEST(Decode, XlForms) {
  const Instr blr = decode(enc_xl(kBoAlways, 0, kXlBclr));
  EXPECT_EQ(blr.mn, Mnemonic::BCLR);
  const Instr bctr = decode(enc_xl(kBoAlways, 0, kXlBcctr));
  EXPECT_EQ(bctr.mn, Mnemonic::BCCTR);
}

TEST(Decode, FpForms) {
  const Instr in = decode(enc_fp(1, 2, 3, kFpMul));
  EXPECT_EQ(in.mn, Mnemonic::FMUL);
  EXPECT_EQ(in.cls, InstrClass::FloatingPoint);
  EXPECT_TRUE(in.writes_fpr());
}

TEST(Decode, FprIndicesWrapTo16) {
  const Instr in = decode(enc_fp(17, 18, 19, kFpAdd));
  EXPECT_EQ(in.rt, 1);
  EXPECT_EQ(in.ra, 2);
  EXPECT_EQ(in.rb, 3);
}

TEST(Decode, SprMoves) {
  const Instr mflr = decode(enc_x(9, kSprLr & 31, (kSprLr >> 5) & 31, kXoMfspr));
  EXPECT_EQ(mflr.mn, Mnemonic::MFSPR);
  EXPECT_EQ(mflr.imm, kSprLr);
  const Instr mtctr =
      decode(enc_x(9, kSprCtr & 31, (kSprCtr >> 5) & 31, kXoMtspr));
  EXPECT_EQ(mtctr.mn, Mnemonic::MTSPR);
  EXPECT_EQ(mtctr.imm, kSprCtr);
}

TEST(Decode, GarbageNeverThrows) {
  // Every possible primary opcode with arbitrary payload must decode to
  // *something* (possibly ILLEGAL) — corrupted fetch streams hit this.
  for (u32 op = 0; op < 64; ++op) {
    const u32 w = (op << 26) | 0x00FF00FF;
    EXPECT_NO_THROW({ (void)decode(w); });
  }
}

TEST(Exec, AluBasics) {
  EXPECT_EQ(alu_exec(Mnemonic::ADD, 2, 3), 5u);
  EXPECT_EQ(alu_exec(Mnemonic::SUBF, 2, 3), 1u);  // rb - ra
  EXPECT_EQ(alu_exec(Mnemonic::AND, 0b1100, 0b1010), 0b1000u);
  EXPECT_EQ(alu_exec(Mnemonic::OR, 0b1100, 0b1010), 0b1110u);
  EXPECT_EQ(alu_exec(Mnemonic::XOR, 0b1100, 0b1010), 0b0110u);
  EXPECT_EQ(alu_exec(Mnemonic::NOR, 0, 0), ~u64{0});
  EXPECT_EQ(alu_exec(Mnemonic::NEG, 5, 0), static_cast<u64>(-5));
  EXPECT_EQ(alu_exec(Mnemonic::EXTSW, 0x80000000u, 0),
            0xFFFFFFFF80000000ull);
}

TEST(Exec, AddisShifts) {
  EXPECT_EQ(alu_exec(Mnemonic::ADDIS, 1, 2), 1u + (2u << 16));
  EXPECT_EQ(alu_exec(Mnemonic::ADDIS, 0, static_cast<u64>(-1)),
            static_cast<u64>(-65536));
}

TEST(Exec, Shifts) {
  EXPECT_EQ(alu_exec(Mnemonic::SLD, 1, 63), u64{1} << 63);
  EXPECT_EQ(alu_exec(Mnemonic::SLD, 1, 64), 0u);
  EXPECT_EQ(alu_exec(Mnemonic::SRD, u64{1} << 63, 63), 1u);
  EXPECT_EQ(alu_exec(Mnemonic::SRD, 1, 100), 0u);
  EXPECT_EQ(alu_exec(Mnemonic::SRAD, static_cast<u64>(-8), 2),
            static_cast<u64>(-2));
  EXPECT_EQ(alu_exec(Mnemonic::SRAD, static_cast<u64>(-1), 80), ~u64{0});
  EXPECT_EQ(alu_exec(Mnemonic::SRAD, 8, 80), 0u);
}

TEST(Exec, MulDivBoundaries) {
  EXPECT_EQ(alu_exec(Mnemonic::MULLD, 3, 7), 21u);
  EXPECT_EQ(alu_exec(Mnemonic::DIVD, static_cast<u64>(-20), 3),
            static_cast<u64>(-6));
  EXPECT_EQ(alu_exec(Mnemonic::DIVD, 5, 0), 0u);  // architected, no trap
  const u64 min = static_cast<u64>(std::numeric_limits<i64>::min());
  EXPECT_EQ(alu_exec(Mnemonic::DIVD, min, static_cast<u64>(-1)), min);
}

TEST(Exec, CompareFields) {
  EXPECT_EQ(compare(1, 2, true), 1u << kCrLt);
  EXPECT_EQ(compare(2, 1, true), 1u << kCrGt);
  EXPECT_EQ(compare(2, 2, true), 1u << kCrEq);
  // Signed vs unsigned disagreement.
  EXPECT_EQ(compare(static_cast<u64>(-1), 1, true), 1u << kCrLt);
  EXPECT_EQ(compare(static_cast<u64>(-1), 1, false), 1u << kCrGt);
}

TEST(Exec, CrInsertExtract) {
  u32 cr = 0;
  cr = cr_insert(cr, 0, 0x8);
  cr = cr_insert(cr, 7, 0x2);
  EXPECT_EQ(cr_extract(cr, 0), 0x8u);
  EXPECT_EQ(cr_extract(cr, 7), 0x2u);
  EXPECT_EQ(cr_extract(cr, 3), 0u);
  // cr_bit indexes from the msb: field 0's LT bit is bi 0.
  EXPECT_EQ(cr_bit(cr, 0), 1u);
  EXPECT_EQ(cr_bit(cr, 1), 0u);
  // field 7's EQ bit is bi 30.
  EXPECT_EQ(cr_bit(cr, 30), 1u);
}

TEST(Exec, BranchEval) {
  const u32 cr = cr_insert(0, 0, 1u << kCrEq);  // field 0 EQ set → bi 2
  EXPECT_TRUE(eval_branch(kBoAlways, 0, 0, 0).taken);
  EXPECT_TRUE(eval_branch(kBoTrue, 2, cr, 0).taken);
  EXPECT_FALSE(eval_branch(kBoFalse, 2, cr, 0).taken);
  EXPECT_TRUE(eval_branch(kBoFalse, 0, cr, 0).taken);

  const BranchEval dnz = eval_branch(kBoDnz, 0, 0, 2);
  EXPECT_TRUE(dnz.taken);
  EXPECT_EQ(dnz.ctr_after, 1u);
  const BranchEval dnz_last = eval_branch(kBoDnz, 0, 0, 1);
  EXPECT_FALSE(dnz_last.taken);
  EXPECT_EQ(dnz_last.ctr_after, 0u);

  // Unknown BO (fault-corrupted): architected not-taken.
  EXPECT_FALSE(eval_branch(31, 0, ~0u, 5).taken);
}

TEST(Exec, FpuBitExact) {
  const u64 two = std::bit_cast<u64>(2.0);
  const u64 three = std::bit_cast<u64>(3.0);
  EXPECT_EQ(std::bit_cast<double>(fpu_exec(Mnemonic::FADD, two, three)), 5.0);
  EXPECT_EQ(std::bit_cast<double>(fpu_exec(Mnemonic::FSUB, two, three)), -1.0);
  EXPECT_EQ(std::bit_cast<double>(fpu_exec(Mnemonic::FMUL, two, three)), 6.0);
  EXPECT_EQ(std::bit_cast<double>(fpu_exec(Mnemonic::FDIV, three, two)), 1.5);
  // Division by zero is defined (IEEE inf), never a trap.
  const u64 zero = std::bit_cast<u64>(0.0);
  EXPECT_TRUE(std::isinf(std::bit_cast<double>(
      fpu_exec(Mnemonic::FDIV, two, zero))));
}

TEST(Exec, Agen) {
  EXPECT_EQ(agen(100, false, -4), 96u);
  EXPECT_EQ(agen(100, true, 8), 8u);
}

TEST(Exec, AccessSizes) {
  EXPECT_EQ(access_size(Mnemonic::LBZ), 1u);
  EXPECT_EQ(access_size(Mnemonic::LWZ), 4u);
  EXPECT_EQ(access_size(Mnemonic::LD), 8u);
  EXPECT_EQ(access_size(Mnemonic::STFD), 8u);
}

TEST(Exec, CorruptedMnemonicsAreBenign) {
  EXPECT_EQ(alu_exec(Mnemonic::STOP, 1, 2), 0u);
  EXPECT_EQ(fpu_exec(Mnemonic::ADD, 1, 2), 0u);
  EXPECT_EQ(access_size(Mnemonic::ADD), 1u);
}

}  // namespace
}  // namespace sfi::isa
