#include <gtest/gtest.h>

#include "avp/testgen.hpp"
#include "beam/beam.hpp"

namespace sfi::beam {
namespace {

avp::Testcase testcase(u64 seed = 19) {
  avp::TestcaseConfig cfg;
  cfg.seed = seed;
  cfg.num_instructions = 80;
  return avp::generate_testcase(cfg);
}

TEST(Beam, EventSplitTracksCrossSections) {
  BeamConfig cfg;
  cfg.seed = 1;
  cfg.num_events = 300;
  const BeamResult r = run_beam_experiment(testcase(), cfg);
  EXPECT_EQ(r.latch_events + r.array_events, 300u);
  // ~12k latch bits vs ~11k array bits at equal cross-section: roughly an
  // even split.
  EXPECT_GT(r.latch_events, 90u);
  EXPECT_GT(r.array_events, 60u);
}

TEST(Beam, LatchOnlyWhenArraysInsensitive) {
  BeamConfig cfg;
  cfg.seed = 2;
  cfg.num_events = 50;
  cfg.array_cross_section = 0.0;
  const BeamResult r = run_beam_experiment(testcase(), cfg);
  EXPECT_EQ(r.array_events, 0u);
  EXPECT_EQ(r.latch_events, 50u);
}

TEST(Beam, MostEventsBenign) {
  BeamConfig cfg;
  cfg.seed = 3;
  cfg.num_events = 250;
  const BeamResult r = run_beam_experiment(testcase(), cfg);
  const double benign =
      r.counts().fraction(inject::Outcome::Vanished) +
      r.counts().fraction(inject::Outcome::Corrected);
  EXPECT_GT(benign, 0.9);
  EXPECT_LT(r.counts().fraction(inject::Outcome::BadArchState), 0.05);
}

TEST(Beam, Deterministic) {
  BeamConfig cfg;
  cfg.seed = 4;
  cfg.num_events = 60;
  const BeamResult a = run_beam_experiment(testcase(), cfg);
  const BeamResult b = run_beam_experiment(testcase(), cfg);
  for (std::size_t c = 0; c < inject::kNumOutcomes; ++c) {
    EXPECT_EQ(a.counts().counts[c], b.counts().counts[c]);
  }
}

TEST(Beam, ArrayStrikesNeverSilentlyCorrupt) {
  // Every array is parity- or ECC-protected: a single struck bit must never
  // produce BadArchState.
  BeamConfig cfg;
  cfg.seed = 5;
  cfg.num_events = 150;
  cfg.latch_cross_section = 0.0;  // array strikes only
  const BeamResult r = run_beam_experiment(testcase(), cfg);
  EXPECT_EQ(r.latch_events, 0u);
  EXPECT_EQ(r.counts().of(inject::Outcome::BadArchState), 0u);
}

}  // namespace
}  // namespace sfi::beam
