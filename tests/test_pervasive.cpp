// Pervasive-logic behaviours: FIR capture, watchdog, recovery arbitration,
// escalation rules, and the scan-only configuration's failure modes.
#include <gtest/gtest.h>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "sfi/runner.hpp"
#include "sfi/tracer.hpp"

namespace sfi {
namespace {

using inject::FaultMode;
using inject::FaultSpec;
using inject::Outcome;

struct Harness {
  avp::Testcase tc;
  avp::GoldenResult golden;
  core::Pearl6Model model;
  std::unique_ptr<emu::Emulator> emu;
  emu::Checkpoint cp;
  emu::GoldenTrace trace;
  std::unique_ptr<inject::InjectionRunner> runner;

  Harness() {
    tc.program.code = isa::assemble(R"(
      li r1, 60
      mtctr r1
      li r2, 0
    loop:
      addi r2, r2, 1
      bdnz loop
      stop
    )");
    golden = avp::run_golden(tc);
    emu = std::make_unique<emu::Emulator>(model);
    trace = avp::run_reference(model, *emu, tc);
    emu->reset();
    cp = emu->save_checkpoint();
    runner = std::make_unique<inject::InjectionRunner>(model, *emu, cp, trace,
                                                       golden,
                                                       inject::RunConfig{});
  }

  [[nodiscard]] inject::RunResult flip(std::string_view name, u32 bit,
                                       Cycle cycle) {
    const auto ords = model.registry().collect_ordinals(
        [&](const netlist::LatchMeta& m) { return m.name == name; });
    EXPECT_FALSE(ords.empty()) << name;
    FaultSpec f;
    f.index = ords.at(bit);
    f.cycle = cycle;
    return runner->run(f);
  }
};

TEST(Pervasive, RedundantRecoveryFlagMismatchChecksto) {
  Harness h;
  // The pervasive copy of "recovery active" is cross-checked against the
  // RUT sequencer every cycle: a flip is an immediate protocol violation.
  const auto r = h.flip("core.rec.active", 0, 30);
  EXPECT_EQ(r.outcome, Outcome::Checkstop);
  EXPECT_LE(r.end_cycle, 33u);  // detected within a cycle or two
}

TEST(Pervasive, HangLatchFlipIsTerminalHang) {
  Harness h;
  const auto r = h.flip("core.hang", 0, 30);
  EXPECT_EQ(r.outcome, Outcome::Hang);
}

TEST(Pervasive, DoneLatchFlipEndsTestEarlyAsSdc) {
  Harness h;
  // A conjured "test finished" with half the program unexecuted is exactly
  // what the AVP's golden compare exists to catch.
  const auto r = h.flip("core.done", 0, 30);
  EXPECT_EQ(r.outcome, Outcome::BadArchState);
}

TEST(Pervasive, WatchdogCounterFlipResyncsOrRecovers) {
  Harness h;
  // The watchdog counter resets at every completion; a flip either washes
  // out (resync) or trips a spurious hang if it jumps past the timeout.
  // With timeout 600 and completions every few cycles, it must wash out.
  const auto r = h.flip("core.wd.counter", 5, 40);
  EXPECT_EQ(r.outcome, Outcome::Vanished);
}

TEST(Pervasive, FirstErrorCaptureRecordsFirstCheckerOnly) {
  Harness h;
  // Within one loop iteration the flip may land in the read-to-overwrite
  // window (vanishing legally); sweep a few cycles until one is detected.
  FaultSpec f;
  const auto ords = h.model.registry().collect_ordinals(
      [](const netlist::LatchMeta& m) { return m.name == "fxu.gpr2"; });
  f.index = ords.at(3);
  bool found = false;
  for (Cycle c = 30; c < 44 && !found; ++c) {
    f.cycle = c;
    const auto t = inject::trace_injection(h.model, *h.emu, h.cp, h.trace,
                                           h.golden, f);
    if (!t.detected()) continue;
    found = true;
    EXPECT_EQ(t.events.front().unit, netlist::Unit::FXU);
    EXPECT_EQ(t.result.outcome, Outcome::Corrected);
  }
  EXPECT_TRUE(found) << "live register never caught across a full iteration";
}

TEST(Pervasive, RecoveryCompletesWithinTimeout) {
  Harness h;
  // End-to-end recovery latency: flush + 51-entry restore + refetch must
  // finish well inside the recovery-timeout mode value (200 cycles).
  FaultSpec f;
  // CTR is read by every bdnz; sweep cycles until the flip lands in the
  // written-then-read window (the read-to-overwrite window vanishes).
  const auto ords = h.model.registry().collect_ordinals(
      [](const netlist::LatchMeta& m) { return m.name == "idu.ctr"; });
  f.index = ords.at(2);
  Cycle start = 0;
  Cycle complete = 0;
  for (Cycle c = 35; c < 50 && start == 0; ++c) {
    f.cycle = c;
    const auto t = inject::trace_injection(h.model, *h.emu, h.cp, h.trace,
                                           h.golden, f);
    for (const auto& e : t.events) {
      if (e.kind == inject::TraceEvent::Kind::RecoveryStarted && start == 0) {
        start = e.cycle;
      }
      if (e.kind == inject::TraceEvent::Kind::RecoveryCompleted &&
          complete == 0) {
        complete = e.cycle;
      }
    }
  }
  ASSERT_GT(start, 0u);
  ASSERT_GT(complete, start);
  EXPECT_LT(complete - start, 80u);
  EXPECT_GT(complete - start, 50u);  // 51 restore cycles is the floor
}

TEST(Pervasive, StickyForceErrorOnAnyUnitEscalates) {
  // force_error MODE bits exist in every unit's ring; all of them must end
  // in checkstop (recovery storm breaker) — none may silently corrupt.
  Harness h;
  for (const char* name :
       {"ifu.mode.force_error", "idu.mode.force_error",
        "fxu.mode.force_error", "fpu.mode.force_error",
        "lsu.mode.force_error", "rut.mode.force_error"}) {
    const auto r = h.flip(name, 0, 25);
    EXPECT_EQ(r.outcome, Outcome::Checkstop) << name;
  }
}

TEST(Pervasive, GptrHoldWedgesUnitsInTheInstructionPath) {
  Harness h;
  // IFU/IDU/FXU carry every instruction of this loop: wedging them stops
  // completion. (Wedging the *idle* LSU of a load-free loop legitimately
  // vanishes — exercised by the campaign suites.)
  for (const char* name :
       {"ifu.gptr.hold", "idu.gptr.hold", "fxu.gptr.hold"}) {
    const auto r = h.flip(name, 0, 25);
    EXPECT_TRUE(r.outcome == Outcome::Hang ||
                r.outcome == Outcome::Checkstop)
        << name << " -> " << to_string(r.outcome);
  }
}

TEST(Pervasive, GptrScanEnableIsEquallyFatal) {
  Harness h;
  const auto r = h.flip("fxu.gptr.scan_en", 0, 25);
  EXPECT_TRUE(r.outcome == Outcome::Hang || r.outcome == Outcome::Checkstop);
}

TEST(Pervasive, SpareGptrBitsAreBenign) {
  Harness h;
  for (u32 bit = 0; bit < 6; ++bit) {
    const auto r = h.flip("core.gptr.test", bit, 25);
    EXPECT_EQ(r.outcome, Outcome::Vanished) << bit;
  }
}

}  // namespace
}  // namespace sfi
