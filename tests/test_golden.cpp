#include <gtest/gtest.h>

#include <bit>

#include "isa/assembler.hpp"
#include "isa/golden.hpp"

namespace sfi::isa {
namespace {

Program prog_from(std::string_view src) {
  Program p;
  p.code = assemble(src);
  return p;
}

GoldenModel run(std::string_view src, ArchState init = {},
                u64 max_instrs = 10000) {
  GoldenModel gm(1u << 16);
  gm.reset(prog_from(src), init);
  EXPECT_EQ(gm.run(max_instrs), GoldenModel::Status::Stopped);
  return gm;
}

TEST(Golden, ArithmeticSequence) {
  const auto gm = run(R"(
    li r1, 6
    li r2, 7
    mulld r3, r1, r2
    subf r4, r1, r3    # r3 - r1
    divd r5, r3, r2
    stop
  )");
  EXPECT_EQ(gm.state().gpr[3], 42u);
  EXPECT_EQ(gm.state().gpr[4], 36u);
  EXPECT_EQ(gm.state().gpr[5], 6u);
}

TEST(Golden, MemoryRoundTrip) {
  const auto gm = run(R"(
    li   r1, 0x1000
    addi r1, r1, 0x1000     # r1 = 0x2000 (clear of the code)
    li   r2, -123
    std  r2, 16(r1)
    ld   r3, 16(r1)
    lwz  r4, 16(r1)
    lbz  r5, 16(r1)
    stop
  )");
  EXPECT_EQ(gm.state().gpr[3], static_cast<u64>(-123));
  EXPECT_EQ(gm.state().gpr[4], 0xFFFFFF85u);  // zero-extended word
  EXPECT_EQ(gm.state().gpr[5], 0x85u);
}

TEST(Golden, CountedLoop) {
  const auto gm = run(R"(
    li r1, 10
    mtctr r1
    li r2, 0
  loop:
    addi r2, r2, 3
    bdnz loop
    stop
  )");
  EXPECT_EQ(gm.state().gpr[2], 30u);
  EXPECT_EQ(gm.state().ctr, 0u);
}

TEST(Golden, ConditionalBranching) {
  const auto gm = run(R"(
    li r1, 5
    cmpi 0, r1, 7
    blt 0, less
    li r2, 111
    b end
  less:
    li r2, 222
  end:
    stop
  )");
  EXPECT_EQ(gm.state().gpr[2], 222u);
}

TEST(Golden, CallAndReturn) {
  const auto gm = run(R"(
    bl func
    li r4, 9
    stop
  func:
    li r3, 77
    blr
  )");
  EXPECT_EQ(gm.state().gpr[3], 77u);
  EXPECT_EQ(gm.state().gpr[4], 9u);
}

TEST(Golden, Bcctr) {
  const auto gm = run(R"(
    li r1, 0x1000
    addi r1, r1, 20       # address of 'target' (word 5 → 0x1014)
    mtctr r1
    bctr
    li r2, 1              # skipped
  target:
    li r3, 5
    stop
  )");
  EXPECT_EQ(gm.state().gpr[2], 0u);
  EXPECT_EQ(gm.state().gpr[3], 5u);
}

TEST(Golden, FloatingPoint) {
  ArchState init;
  init.fpr[1] = std::bit_cast<u64>(1.5);
  init.fpr[2] = std::bit_cast<u64>(2.5);
  const auto gm = run(R"(
    fadd f3, f1, f2
    fmul f4, f3, f2
    fdiv f5, f4, f1
    fsub f6, f5, f2
    stop
  )", init);
  EXPECT_EQ(std::bit_cast<double>(gm.state().fpr[3]), 4.0);
  EXPECT_EQ(std::bit_cast<double>(gm.state().fpr[4]), 10.0);
  EXPECT_EQ(std::bit_cast<double>(gm.state().fpr[5]), 10.0 / 1.5);
}

TEST(Golden, FpMemory) {
  ArchState init;
  init.fpr[1] = std::bit_cast<u64>(3.25);
  const auto gm = run(R"(
    li r1, 0x4000
    stfd f1, 0(r1)
    lfd f2, 0(r1)
    stop
  )", init);
  EXPECT_EQ(std::bit_cast<double>(gm.state().fpr[2]), 3.25);
}

TEST(Golden, ClassCountsAndMix) {
  const auto gm = run(R"(
    li r1, 1
    li r2, 2
    add r3, r1, r2
    cmpi 0, r3, 3
    stw r3, 0(r1)
    lwz r4, 0(r1)
    b next
  next:
    stop
  )");
  const auto& counts = gm.class_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(InstrClass::FixedPoint)], 3u);
  EXPECT_EQ(counts[static_cast<std::size_t>(InstrClass::Comparison)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(InstrClass::Store)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(InstrClass::Load)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(InstrClass::Branch)], 1u);
  EXPECT_EQ(gm.instructions_retired(), 7u);
}

TEST(Golden, LimitReached) {
  GoldenModel gm(1u << 16);
  Program p;
  p.code = assemble("loop: b loop");
  gm.reset(p, {});
  EXPECT_EQ(gm.run(100), GoldenModel::Status::LimitReached);
  EXPECT_EQ(gm.instructions_retired(), 100u);
}

TEST(Golden, ArchStateHashAndDiff) {
  ArchState a;
  ArchState b;
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_TRUE(a.diff(b).empty());
  b.gpr[7] = 1;
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.diff(b).find("gpr[7]"), std::string::npos);
  b = a;
  b.pc = 4;
  EXPECT_FALSE(a.diff(b).empty());
  EXPECT_TRUE(a.diff(b, /*ignore_pc=*/true).empty());
}

TEST(Golden, MemoryWraps) {
  Memory mem(256);
  mem.store_u32(254, 0xAABBCCDD);
  EXPECT_EQ(mem.load_u8(254), 0xDDu);
  EXPECT_EQ(mem.load_u8(255), 0xCCu);
  EXPECT_EQ(mem.load_u8(0), 0xBBu);
  EXPECT_EQ(mem.load_u8(1), 0xAAu);
  EXPECT_EQ(mem.load_u32(254), 0xAABBCCDDu);
}

TEST(Golden, MemoryRangeHash) {
  Memory mem(1024);
  const u64 h0 = mem.range_hash(0x100, 64);
  mem.store_u8(0x120, 7);
  EXPECT_NE(mem.range_hash(0x100, 64), h0);
  EXPECT_EQ(mem.range_hash(0x200, 64), mem.range_hash(0x300, 64));
}

}  // namespace
}  // namespace sfi::isa
