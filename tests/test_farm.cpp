// Farm mode (src/farm/): supervised multi-process campaign execution.
//
// The load-bearing assertions mirror the module's contract: a farm
// campaign's merged output is byte-identical to a (canonicalised)
// single-process run — including when a worker is kill -9'd mid-shard or
// wedges and is shot by the watchdog — and a reproducible worker-killer
// injection degrades to Outcome::HarnessFatal instead of sinking the
// campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "avp/testgen.hpp"
#include "farm/farm.hpp"
#include "farm/worker.hpp"
#include "sched/scheduler.hpp"
#include "sfi/telemetry.hpp"
#include "store/merge.hpp"
#include "store/reader.hpp"
#include "telemetry/flight_recorder.hpp"

namespace sfi::farm {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sfi_farm_test_" + name + ".sfr"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

avp::Testcase small_testcase() {
  avp::TestcaseConfig cfg;
  cfg.seed = 11;
  cfg.num_instructions = 80;
  return avp::generate_testcase(cfg);
}

inject::CampaignConfig small_campaign(u32 n) {
  inject::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = n;
  return cfg;
}

/// The reference bytes every farm run must reproduce: a single-process
/// scheduler run of the same campaign, canonicalised through merge (which
/// strips commit markers and sorts by index).
std::vector<u8> canonical_single_process(const avp::Testcase& tc,
                                         const inject::CampaignConfig& cfg,
                                         const std::string& tag) {
  TempFile raw("single_" + tag), canon("canon_" + tag);
  const auto r = sched::run_campaign_to_store(tc, cfg, raw.path(), {});
  EXPECT_TRUE(r.complete);
  (void)store::merge_stores({raw.path()}, canon.path());
  return slurp(canon.path());
}

/// Fast supervision timings so failure tests finish in seconds.
FarmConfig quick_farm(u32 workers) {
  FarmConfig fc;
  fc.workers = workers;
  fc.shard_size = 8;
  fc.watchdog_seconds = 0.4;
  fc.startup_seconds = 60.0;
  fc.backoff_base_seconds = 0.02;
  fc.backoff_cap_seconds = 0.2;
  fc.poll_seconds = 0.005;
  return fc;
}

TEST(Farm, ParseHostsFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sfi_farm_hosts.txt")
          .string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# comment line\n"
        << "localhost 2\n"
        << "\n"
        << "node-a\n";
  }
  const std::vector<HostSlot> hosts = parse_hosts_file(path);
  std::filesystem::remove(path);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0].host, "localhost");
  EXPECT_EQ(hosts[0].slots, 2u);
  EXPECT_EQ(hosts[1].host, "node-a");
  EXPECT_EQ(hosts[1].slots, 1u);

  EXPECT_THROW((void)parse_hosts_file("/nonexistent/hosts.txt"),
               std::exception);
}

TEST(Farm, MatchesSingleProcessByteIdentical) {
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(40);

  TempFile out("plain");
  const FarmResult r = run_farm_campaign(tc, cfg, out.path(), quick_farm(2));
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.stopped);
  EXPECT_EQ(r.executed, 40u);
  EXPECT_EQ(r.resumed, 0u);
  EXPECT_TRUE(r.harness_fatal.empty());
  EXPECT_GE(r.workers_spawned, 2u);
  EXPECT_EQ(r.worker_crashes, 0u);
  EXPECT_EQ(r.watchdog_kills, 0u);

  EXPECT_EQ(slurp(out.path()),
            canonical_single_process(tc, cfg, "plain"));

  // Shard files are cleaned up after the merge by default.
  const auto dir = std::filesystem::temp_directory_path();
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    EXPECT_EQ(name.find("sfi_farm_test_plain.w"), std::string::npos)
        << "leftover shard file " << name;
  }
}

TEST(Farm, CrashedWorkerIsRetriedByteIdentical) {
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(40);

  // kill -9 mid-shard at index 13 (attempt 0 only): the supervisor must
  // retry the shard's unfinished remainder on a fresh worker and the
  // determinism contract makes the retry byte-identical.
  FarmConfig fc = quick_farm(2);
  fc.sabotage.crash_index = 13;

  TempFile out("crash");
  const FarmResult r = run_farm_campaign(tc, cfg, out.path(), fc);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.executed, 40u);
  EXPECT_TRUE(r.harness_fatal.empty());
  EXPECT_GE(r.worker_crashes, 1u);
  EXPECT_GE(r.shard_retries, 1u);
  EXPECT_GT(r.workers_spawned, 2u);  // the replacement worker

  EXPECT_EQ(slurp(out.path()),
            canonical_single_process(tc, cfg, "crash"));
}

TEST(Farm, WedgedWorkerStruckOutAsHarnessFatal) {
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(16);

  // Index 5 wedges its worker on *every* attempt — the reproducible
  // killer. After max_strikes watchdog kills it must be recorded as
  // HarnessFatal and the rest of the campaign must still complete.
  FarmConfig fc = quick_farm(2);
  fc.shard_size = 4;
  fc.max_strikes = 2;
  fc.sabotage.wedge_index = 5;

  TempFile out("wedge");
  const FarmResult r = run_farm_campaign(tc, cfg, out.path(), fc);
  EXPECT_TRUE(r.complete);
  ASSERT_EQ(r.harness_fatal, (std::vector<u32>{5}));
  EXPECT_GE(r.watchdog_kills, 2u);  // one per strike
  EXPECT_EQ(r.worker_crashes, 0u);
  EXPECT_EQ(r.executed, 15u);  // everything but the killer

  const store::StoreContents c = store::read_store(out.path());
  ASSERT_EQ(c.records.size(), 16u);
  EXPECT_EQ(c.records[5].rec.outcome, inject::Outcome::HarnessFatal);
  EXPECT_EQ(r.agg.counts.of(inject::Outcome::HarnessFatal), 1u);
}

TEST(Farm, TransientWedgeRecoversByteIdentical) {
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(24);

  // Wedge only on attempt 0: one watchdog kill, one strike, then the retry
  // succeeds — no HarnessFatal, canonical bytes intact.
  FarmConfig fc = quick_farm(2);
  fc.sabotage.wedge_index = 9;
  fc.sabotage.wedge_once = true;

  TempFile out("wedge_once");
  const FarmResult r = run_farm_campaign(tc, cfg, out.path(), fc);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.harness_fatal.empty());
  EXPECT_GE(r.watchdog_kills, 1u);
  EXPECT_EQ(r.executed, 24u);

  EXPECT_EQ(slurp(out.path()),
            canonical_single_process(tc, cfg, "wedge_once"));
}

TEST(Farm, MetricsSnapshotsFeedFleetViewStoreUnchanged) {
  const avp::Testcase tc = small_testcase();
  inject::CampaignConfig cfg = small_campaign(40);

  // Workers report cumulative 'M' frames every 4 injections; the
  // coordinator folds them into the campaign telemetry's fleet view.
  inject::CampaignTelemetry tel;
  cfg.telemetry = &tel;
  FarmConfig fc = quick_farm(2);
  fc.metrics_every = 4;

  TempFile out("metrics");
  const FarmResult r = run_farm_campaign(tc, cfg, out.path(), fc);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.executed, 40u);

  // Every worker sent a parting snapshot, and the fleet totals cover the
  // whole campaign (each injection is counted by exactly one worker —
  // nothing crashed, so no supervised-retry double counts).
  EXPECT_GE(tel.fleet_workers(), 2u);
  const telemetry::MetricsSnapshot fleet = tel.fleet_snapshot();
  EXPECT_EQ(fleet.counter_value("injections"), 40u);
  u64 outcome_total = 0;
  for (const auto o : inject::kAllOutcomes) {
    outcome_total +=
        fleet.counter_value("outcome." + std::string(to_string(o)));
  }
  EXPECT_EQ(outcome_total, 40u);

  // The observability plane is read-only: the merged store with 'M' frames
  // flowing is byte-identical to the plain single-process canonical run.
  cfg.telemetry = nullptr;
  EXPECT_EQ(slurp(out.path()), canonical_single_process(tc, cfg, "metrics"));
}

TEST(Farm, PostmortemDumpOnSupervisionFailure) {
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(24);

  // The global recorder is process-wide (first enable wins) — that is the
  // deployment shape too: one ring per coordinator process.
  telemetry::FlightRecorder::global().enable(256);

  FarmConfig fc = quick_farm(2);
  fc.sabotage.crash_index = 9;  // kill -9 one worker mid-shard, attempt 0
  const std::string postmortem =
      (std::filesystem::temp_directory_path() / "sfi_farm_postmortem.jsonl")
          .string();
  std::filesystem::remove(postmortem);
  fc.postmortem_path = postmortem;

  TempFile out("postmortem");
  inject::CampaignTelemetry tel;
  inject::CampaignConfig tcfg = cfg;
  tcfg.telemetry = &tel;
  const FarmResult r = run_farm_campaign(tc, tcfg, out.path(), fc);
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.worker_crashes, 1u);

  // The supervision failure left a readable trace of the last seconds.
  ASSERT_TRUE(std::filesystem::exists(postmortem));
  const std::vector<u8> bytes = slurp(postmortem);
  EXPECT_FALSE(bytes.empty());
  const std::string text(bytes.begin(), bytes.end());
  EXPECT_NE(text.find("\"ev\":"), std::string::npos);
  std::filesystem::remove(postmortem);

  // Observability only: the campaign still converged on canonical bytes.
  EXPECT_EQ(slurp(out.path()),
            canonical_single_process(tc, cfg, "postmortem"));
}

TEST(Farm, CooperativeStopIsResumable) {
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(60);

  TempFile out("stop");
  std::atomic<bool> stop{false};
  FarmConfig fc = quick_farm(1);
  fc.on_progress = [&](const sched::Progress& p) {
    if (p.done >= 8) stop.store(true);
  };
  fc.should_stop = [&] { return stop.load(); };

  const FarmResult part = run_farm_campaign(tc, cfg, out.path(), fc);
  EXPECT_TRUE(part.stopped);
  EXPECT_FALSE(part.complete);
  EXPECT_GE(part.executed, 8u);
  EXPECT_LT(part.executed, 60u);

  // The interrupted output is itself a valid store holding exactly the
  // committed records.
  const store::StoreContents c = store::read_store(out.path());
  EXPECT_EQ(c.records.size(), part.executed);

  // Resume finishes the campaign and converges on the canonical bytes.
  const FarmResult rest =
      run_farm_campaign(tc, cfg, out.path(), quick_farm(2), /*resume=*/true);
  EXPECT_TRUE(rest.complete);
  EXPECT_EQ(rest.resumed, part.executed);
  EXPECT_EQ(rest.resumed + rest.executed, 60u);

  EXPECT_EQ(slurp(out.path()),
            canonical_single_process(tc, cfg, "stop"));
}

TEST(Farm, ResumeRefusesForeignStore) {
  const avp::Testcase tc = small_testcase();
  TempFile out("foreign");
  const FarmResult r =
      run_farm_campaign(tc, small_campaign(16), out.path(), quick_farm(2));
  ASSERT_TRUE(r.complete);

  inject::CampaignConfig other = small_campaign(16);
  other.seed = 8;
  EXPECT_THROW((void)run_farm_campaign(tc, other, out.path(), quick_farm(2),
                                       /*resume=*/true),
               store::StoreError);
}

TEST(Farm, WorkerMetricsCadenceDefaultIsFleetCadence) {
  // Regression: `sfi worker` used to default --metrics-every to 0 while the
  // farm coordinator and daemon defaulted to 32, so a hand-launched worker
  // silently emitted no 'M' frames. The CLI now takes its default from
  // WorkerOptions; pin the unified cadence here.
  EXPECT_EQ(WorkerOptions{}.metrics_every, 32u);
}

}  // namespace
}  // namespace sfi::farm
