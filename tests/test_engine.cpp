// Injection engines (src/sfi/engine.hpp): the lane engine must be a pure
// speed knob. Every test here is some variation of the module's central
// contract — records (and stores, and footprints) produced under
// EngineKind::Lanes are field/byte-identical to EngineKind::Scalar for the
// same plan, for every lane count, fault mode, and resume split.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "avp/testgen.hpp"
#include "netlist/state_vector.hpp"
#include "sched/scheduler.hpp"
#include "sfi/engine.hpp"
#include "store/merge.hpp"

namespace sfi::inject {
namespace {

avp::Testcase small_testcase() {
  avp::TestcaseConfig cfg;
  cfg.seed = 11;
  cfg.num_instructions = 80;
  return avp::generate_testcase(cfg);
}

CampaignConfig small_campaign(u32 n, EngineKind engine, u32 lanes = 64) {
  CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = n;
  cfg.threads = 1;
  cfg.engine = engine;
  cfg.lanes = lanes;
  return cfg;
}

void expect_records_equal(const std::vector<InjectionRecord>& a,
                          const std::vector<InjectionRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault.index, b[i].fault.index) << "record " << i;
    EXPECT_EQ(a[i].fault.cycle, b[i].fault.cycle) << "record " << i;
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "record " << i;
    EXPECT_EQ(a[i].unit, b[i].unit) << "record " << i;
    EXPECT_EQ(a[i].type, b[i].type) << "record " << i;
    EXPECT_EQ(a[i].end_cycle, b[i].end_cycle) << "record " << i;
    EXPECT_EQ(a[i].early_exited, b[i].early_exited) << "record " << i;
    EXPECT_EQ(a[i].recoveries, b[i].recoveries) << "record " << i;
  }
}

TEST(EngineAB, RecordsIdenticalToggleCampaign) {
  const avp::Testcase tc = small_testcase();
  const CampaignResult scalar =
      run_campaign(tc, small_campaign(300, EngineKind::Scalar));
  const CampaignResult lanes =
      run_campaign(tc, small_campaign(300, EngineKind::Lanes));
  expect_records_equal(scalar.records, lanes.records);
}

TEST(EngineAB, RecordsIdenticalAcrossLaneCounts) {
  const avp::Testcase tc = small_testcase();
  const CampaignResult scalar =
      run_campaign(tc, small_campaign(120, EngineKind::Scalar));
  for (const u32 lanes : {1u, 3u, 64u, 512u}) {
    const CampaignResult r =
        run_campaign(tc, small_campaign(120, EngineKind::Lanes, lanes));
    expect_records_equal(scalar.records, r.records);
  }
}

TEST(EngineAB, RecordsIdenticalStickyFallback) {
  // Sticky faults never enter the fast path — the engine must route them
  // through the verbatim scalar runner and still match.
  const avp::Testcase tc = small_testcase();
  CampaignConfig a = small_campaign(80, EngineKind::Scalar);
  a.mode = FaultMode::Sticky;
  a.sticky_duration = 6;
  CampaignConfig b = a;
  b.engine = EngineKind::Lanes;
  const CampaignResult scalar = run_campaign(tc, a);
  const CampaignResult lanes = run_campaign(tc, b);
  expect_records_equal(scalar.records, lanes.records);
}

TEST(EngineAB, RecordsIdenticalMultiBitUpsets) {
  // Wide adjacent upsets (beam-style faults, widened post-plan): in-carrier
  // widths ride lanes, anything spanning more diff words than the carrier
  // falls back. Both engines must match, driven through the raw interface.
  const avp::Testcase tc = small_testcase();
  CampaignConfig cfg = small_campaign(120, EngineKind::Scalar);
  CampaignPlan plan = plan_campaign(tc, cfg);
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    plan.faults[i].adjacent_bits = static_cast<u8>(1 + i % 9);
  }

  const auto run_all = [&](EngineKind kind) {
    CampaignConfig c = cfg;
    c.engine = kind;
    const auto eng = make_engine(tc, c, plan);
    std::vector<InjectionRecord> records(plan.faults.size());
    u32 p = 0;
    eng->run(
        [&]() -> std::optional<u32> {
          if (p >= plan.faults.size()) return std::nullopt;
          return p++;
        },
        [&](u32 i, const InjectionRecord& rec,
            std::optional<PropagationRecord>) { records[i] = rec; },
        nullptr);
    return records;
  };
  expect_records_equal(run_all(EngineKind::Scalar),
                       run_all(EngineKind::Lanes));
}

TEST(EngineAB, FootprintsIdentical) {
  const avp::Testcase tc = small_testcase();
  CampaignConfig a = small_campaign(100, EngineKind::Scalar);
  a.footprint.enabled = true;
  a.footprint.vanished_sample = 8;
  CampaignConfig b = a;
  b.engine = EngineKind::Lanes;
  const CampaignResult scalar = run_campaign(tc, a);
  const CampaignResult lanes = run_campaign(tc, b);
  expect_records_equal(scalar.records, lanes.records);
  ASSERT_EQ(scalar.footprints.size(), lanes.footprints.size());
  for (std::size_t i = 0; i < scalar.footprints.size(); ++i) {
    const PropagationRecord& x = scalar.footprints[i];
    const PropagationRecord& y = lanes.footprints[i];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.outcome, y.outcome);
    EXPECT_EQ(x.masked, y.masked);
    EXPECT_EQ(x.detected, y.detected);
    EXPECT_EQ(x.reached_arch, y.reached_arch);
    EXPECT_EQ(x.reached_memory, y.reached_memory);
    EXPECT_EQ(x.masked_at, y.masked_at);
    EXPECT_EQ(x.detected_at, y.detected_at);
    EXPECT_EQ(x.peak_bits, y.peak_bits);
    EXPECT_EQ(x.samples.size(), y.samples.size());
  }
}

std::vector<u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sfi_engine_test_" + name + ".sfr"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<u8> canonical_store(const avp::Testcase& tc,
                                const CampaignConfig& cfg,
                                const std::string& tag) {
  TempFile raw("raw_" + tag), canon("canon_" + tag);
  const auto r = sched::run_campaign_to_store(tc, cfg, raw.path(), {});
  EXPECT_TRUE(r.complete);
  (void)store::merge_stores({raw.path()}, canon.path());
  return slurp(canon.path());
}

TEST(EngineAB, CanonicalStoreByteIdentical) {
  const avp::Testcase tc = small_testcase();
  const auto scalar =
      canonical_store(tc, small_campaign(200, EngineKind::Scalar), "s");
  const auto lanes =
      canonical_store(tc, small_campaign(200, EngineKind::Lanes), "l");
  EXPECT_EQ(scalar, lanes);
}

TEST(EngineAB, ResumeAcrossEnginesByteIdentical) {
  // Start a campaign under one engine, interrupt it, resume under the
  // other: engine choice is excluded from the fingerprint and the canonical
  // merge must still match an uninterrupted scalar run byte-for-byte.
  const avp::Testcase tc = small_testcase();
  const auto reference =
      canonical_store(tc, small_campaign(200, EngineKind::Scalar), "ref");

  TempFile raw("resume"), canon("resume_canon");
  sched::SchedulerConfig head;
  head.max_new_injections = 90;
  const auto r1 = sched::run_campaign_to_store(
      tc, small_campaign(200, EngineKind::Scalar), raw.path(), head);
  EXPECT_FALSE(r1.complete);
  const auto r2 = sched::run_campaign_to_store(
      tc, small_campaign(200, EngineKind::Lanes), raw.path(), {},
      /*resume=*/true);
  EXPECT_TRUE(r2.complete);
  EXPECT_EQ(r2.resumed, r1.executed);
  (void)store::merge_stores({raw.path()}, canon.path());
  EXPECT_EQ(slurp(canon.path()), reference);
}

TEST(EngineAB, NamesRoundTrip) {
  EXPECT_STREQ(engine_name(EngineKind::Scalar), "scalar");
  EXPECT_STREQ(engine_name(EngineKind::Lanes), "lanes");
  EXPECT_EQ(parse_engine("scalar"), EngineKind::Scalar);
  EXPECT_EQ(parse_engine("lanes"), EngineKind::Lanes);
  EXPECT_EQ(parse_engine("vector"), std::nullopt);
}

TEST(AccessRecorder, RecordsReadsAndWrites) {
  netlist::StateVector sv(256);
  netlist::AccessRecorder rec;
  rec.bind(sv.words().size());
  sv.set_recorder(&rec);

  rec.begin_cycle();
  (void)sv.get_bit(5);
  sv.set_bit(70, true);
  sv.write(130, 10, 0x3ff);
  (void)sv.read(200, 8);
  EXPECT_EQ(rec.reads()[0], u64{1} << 5);
  EXPECT_EQ(rec.writes()[1], u64{1} << 6);
  EXPECT_EQ(rec.writes()[2], u64{0x3ff} << 2);
  EXPECT_EQ(rec.reads()[3], u64{0xff} << 8);

  // flip_bit is a read-modify-write: both sets.
  rec.begin_cycle();
  EXPECT_EQ(rec.reads()[0], 0u);
  sv.flip_bit(3);
  EXPECT_EQ(rec.reads()[0], u64{1} << 3);
  EXPECT_EQ(rec.writes()[0], u64{1} << 3);
}

TEST(AccessRecorder, NeverPropagatesThroughCopies) {
  // Checkpoints and trace snapshots copy StateVectors; a recorder riding
  // along would record phantom accesses (and break equality compares).
  netlist::StateVector sv(128);
  netlist::AccessRecorder rec;
  rec.bind(sv.words().size());
  sv.set_recorder(&rec);

  netlist::StateVector copy(sv);
  rec.begin_cycle();
  copy.set_bit(9, true);
  EXPECT_EQ(rec.writes()[0], 0u);  // copy is unarmed

  netlist::StateVector other(128);
  other.set_bit(9, true);
  EXPECT_FALSE(sv == other);
  other = sv;  // assignment into an unarmed vector stays unarmed...
  EXPECT_TRUE(sv == other);  // ...and equality ignores the recorder
  rec.begin_cycle();
  other.set_bit(11, true);
  EXPECT_EQ(rec.writes()[0], 0u);
}

}  // namespace
}  // namespace sfi::inject
