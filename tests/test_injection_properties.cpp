// Property suite over random injections: for ANY (latch, cycle, mode) the
// classifier must terminate with a legal verdict, verdicts must be
// reproducible, and the benign verdicts must be *sound* (a run classified
// Vanished/Corrected that reached STOP really matches the golden result).
// The simulator itself must never throw on an injected run — a corrupted
// machine is a result, not an error.
#include <gtest/gtest.h>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "sfi/runner.hpp"
#include "stats/rng.hpp"

namespace sfi {
namespace {

using inject::FaultMode;
using inject::FaultSpec;
using inject::Outcome;

struct Fixture {
  avp::Testcase tc;
  avp::GoldenResult golden;
  core::Pearl6Model model;
  std::unique_ptr<emu::Emulator> emu;
  emu::Checkpoint cp;
  emu::GoldenTrace trace;
  std::unique_ptr<inject::InjectionRunner> runner;

  explicit Fixture(u64 seed) {
    avp::TestcaseConfig cfg;
    cfg.seed = seed;
    cfg.num_instructions = 110;
    tc = avp::generate_testcase(cfg);
    golden = avp::run_golden(tc);
    emu = std::make_unique<emu::Emulator>(model);
    trace = avp::run_reference(model, *emu, tc);
    emu->reset();
    cp = emu->save_checkpoint();
    runner = std::make_unique<inject::InjectionRunner>(model, *emu, cp, trace,
                                                       golden,
                                                       inject::RunConfig{});
  }
};

class InjectionProperties : public ::testing::TestWithParam<u64> {};

TEST_P(InjectionProperties, SoundnessSweep) {
  Fixture fx(GetParam() * 131 + 7);
  stats::Xoshiro256 rng(GetParam());
  const u32 latches = fx.model.registry().num_latches();

  for (int i = 0; i < 120; ++i) {
    FaultSpec f;
    f.index = static_cast<u32>(rng.below(latches));
    f.cycle = 1 + rng.below(fx.trace.completion_cycle - 1);
    if (rng.chance(0.15)) {
      f.mode = FaultMode::Sticky;
      f.sticky_duration = 1 + rng.below(64);
      f.sticky_value = rng.chance(0.5);
    }
    inject::RunResult r;
    ASSERT_NO_THROW(r = fx.runner->run(f))
        << fx.model.registry().name_of_ordinal(f.index) << " @" << f.cycle;

    // Soundness of benign verdicts: a run that really finished must match
    // the golden result exactly.
    if (!r.early_exited &&
        (r.outcome == Outcome::Vanished || r.outcome == Outcome::Corrected)) {
      const auto v =
          avp::check_against_golden(fx.model, fx.emu->state(), fx.golden);
      EXPECT_TRUE(v.state_matches)
          << fx.model.registry().name_of_ordinal(f.index) << " @" << f.cycle
          << ": " << v.first_diff;
      EXPECT_TRUE(v.memory_matches)
          << fx.model.registry().name_of_ordinal(f.index) << " @" << f.cycle;
    }
    // Corrected requires a reported event; Vanished requires none.
    if (r.outcome == Outcome::Corrected) {
      EXPECT_TRUE(r.recoveries > 0 || r.corrected > 0);
    }
    if (r.outcome == Outcome::Vanished) {
      EXPECT_EQ(r.recoveries, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectionProperties,
                         ::testing::Range<u64>(1, 9));

TEST(InjectionProperties, VerdictsAreReproducible) {
  Fixture fx(404);
  stats::Xoshiro256 rng(5);
  const u32 latches = fx.model.registry().num_latches();
  for (int i = 0; i < 40; ++i) {
    FaultSpec f;
    f.index = static_cast<u32>(rng.below(latches));
    f.cycle = 1 + rng.below(fx.trace.completion_cycle - 1);
    const auto a = fx.runner->run(f);
    const auto b = fx.runner->run(f);
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.end_cycle, b.end_cycle) << i;
    EXPECT_EQ(a.recoveries, b.recoveries) << i;
  }
}

TEST(InjectionProperties, InjectionAtEveryCycleOfOneLatch) {
  // Exhaustive cycle sweep on a single high-traffic latch: the DEC valid
  // bit. Every landing must classify legally and no run may escape the
  // horizon.
  Fixture fx(808);
  const auto ords = fx.model.registry().collect_ordinals(
      [](const netlist::LatchMeta& m) { return m.name == "idu.dec.v"; });
  ASSERT_EQ(ords.size(), 1u);
  inject::OutcomeCounts counts;
  for (Cycle c = 1; c < fx.trace.completion_cycle; c += 1) {
    FaultSpec f;
    f.index = ords[0];
    f.cycle = c;
    const auto r = fx.runner->run(f);
    counts.add(r.outcome);
    ASSERT_LE(r.end_cycle,
              fx.trace.completion_cycle + fx.runner->config().hang_margin + 1);
  }
  // A valid-bit flip either drops an instruction (re-fetched: vanish) or
  // conjures one from a stale latch image; it must never silently corrupt.
  EXPECT_EQ(counts.of(Outcome::BadArchState), 0u);
  EXPECT_GT(counts.of(Outcome::Vanished), 0u);
}

TEST(InjectionProperties, StickyDurationMonotonicity) {
  // Longer stuck-at faults can only get worse, never better, in aggregate:
  // measure the benign fraction at three durations on a fixed fault list.
  Fixture fx(909);
  stats::Xoshiro256 rng(3);
  const u32 latches = fx.model.registry().num_latches();
  std::vector<FaultSpec> faults(150);
  for (auto& f : faults) {
    f.index = static_cast<u32>(rng.below(latches));
    f.cycle = 1 + rng.below(fx.trace.completion_cycle - 1);
    f.mode = FaultMode::Sticky;
    f.sticky_value = true;
  }
  double prev_benign = 1.1;
  for (const Cycle dur : {Cycle{1}, Cycle{32}, Cycle{512}}) {
    inject::OutcomeCounts counts;
    for (auto f : faults) {
      f.sticky_duration = dur;
      counts.add(fx.runner->run(f).outcome);
    }
    const double benign = counts.fraction(Outcome::Vanished) +
                          counts.fraction(Outcome::Corrected);
    EXPECT_LE(benign, prev_benign + 0.08)
        << "duration " << dur << " implausibly healthier";
    prev_benign = benign;
  }
}

}  // namespace
}  // namespace sfi
