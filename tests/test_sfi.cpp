#include <gtest/gtest.h>

#include "avp/testgen.hpp"
#include "sfi/campaign.hpp"
#include "sfi/sample_size.hpp"

namespace sfi::inject {
namespace {

avp::Testcase small_testcase(u64 seed = 11) {
  avp::TestcaseConfig cfg;
  cfg.seed = seed;
  cfg.num_instructions = 80;
  return avp::generate_testcase(cfg);
}

TEST(Outcome, CountsArithmetic) {
  OutcomeCounts c;
  c.add(Outcome::Vanished);
  c.add(Outcome::Vanished);
  c.add(Outcome::Checkstop);
  EXPECT_EQ(c.total(), 3u);
  EXPECT_EQ(c.of(Outcome::Vanished), 2u);
  EXPECT_NEAR(c.fraction(Outcome::Vanished), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(c.fraction(Outcome::Hang), 0.0);
  OutcomeCounts d;
  d.add(Outcome::Hang);
  c.merge(d);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_TRUE(c.interval(Outcome::Vanished).contains(0.5));
}

TEST(Population, FiltersArePartition) {
  core::Pearl6Model model;
  const auto& reg = model.registry();
  std::size_t by_unit = 0;
  for (const auto u : netlist::kAllUnits) {
    by_unit += LatchPopulation::unit(reg, u).size();
  }
  std::size_t by_type = 0;
  for (const auto t : netlist::kAllLatchTypes) {
    by_type += LatchPopulation::latch_type(reg, t).size();
  }
  const std::size_t all = LatchPopulation::all(reg).size();
  EXPECT_EQ(by_unit, all);
  EXPECT_EQ(by_type, all);
  EXPECT_EQ(all, reg.num_latches());
}

TEST(Population, PickStaysInPopulation) {
  core::Pearl6Model model;
  const auto pop =
      LatchPopulation::unit(model.registry(), netlist::Unit::RUT);
  stats::Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    const u32 ord = pop.pick(rng);
    EXPECT_EQ(model.registry().meta_of_ordinal(ord).unit, netlist::Unit::RUT);
  }
}

TEST(Sampler, WindowRespected) {
  core::Pearl6Model model;
  const auto pop = LatchPopulation::all(model.registry());
  FaultSampler s;
  s.population = &pop;
  s.window_begin = 10;
  s.window_end = 20;
  stats::Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    const FaultSpec f = s.sample(rng);
    EXPECT_GE(f.cycle, 10u);
    EXPECT_LT(f.cycle, 20u);
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const avp::Testcase tc = small_testcase();
  CampaignConfig cfg;
  cfg.seed = 99;
  cfg.num_injections = 60;
  cfg.threads = 1;
  const CampaignResult a = run_campaign(tc, cfg);
  cfg.threads = 3;
  const CampaignResult b = run_campaign(tc, cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << i;
    EXPECT_EQ(a.records[i].fault.index, b.records[i].fault.index) << i;
    EXPECT_EQ(a.records[i].fault.cycle, b.records[i].fault.cycle) << i;
  }
  for (std::size_t c = 0; c < kNumOutcomes; ++c) {
    EXPECT_EQ(a.counts().counts[c], b.counts().counts[c]);
  }
}

TEST(Campaign, BreakdownsSumToTotal) {
  const avp::Testcase tc = small_testcase();
  CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = 120;
  const CampaignResult r = run_campaign(tc, cfg);
  EXPECT_EQ(r.counts().total(), 120u);
  u64 unit_total = 0;
  for (const auto& u : r.agg.by_unit) unit_total += u.total();
  EXPECT_EQ(unit_total, 120u);
  u64 type_total = 0;
  for (const auto& t : r.agg.by_type) type_total += t.total();
  EXPECT_EQ(type_total, 120u);
  EXPECT_GT(r.population_size, 10000u);
}

TEST(Campaign, FilterRestrictsPopulation) {
  const avp::Testcase tc = small_testcase();
  CampaignConfig cfg;
  cfg.seed = 8;
  cfg.num_injections = 50;
  cfg.filter = [](const netlist::LatchMeta& m) {
    return m.unit == netlist::Unit::IFU;
  };
  const CampaignResult r = run_campaign(tc, cfg);
  for (const auto& rec : r.records) {
    EXPECT_EQ(rec.unit, netlist::Unit::IFU);
  }
  EXPECT_EQ(r.agg.by_unit[static_cast<std::size_t>(netlist::Unit::IFU)].total(),
            50u);
}

TEST(Campaign, EarlyExitDoesNotChangeOutcomes) {
  // The golden-hash early exit is an optimization, never a classifier
  // change: outcomes with and without it must match injection-for-injection.
  const avp::Testcase tc = small_testcase(21);
  CampaignConfig fast;
  fast.seed = 1234;
  fast.num_injections = 400;
  CampaignConfig slow = fast;
  slow.run.early_exit = false;
  const CampaignResult a = run_campaign(tc, fast);
  const CampaignResult b = run_campaign(tc, slow);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome)
        << "injection " << i << " latch "
        << a.records[i].fault.index << " cycle " << a.records[i].fault.cycle;
  }
}

TEST(Campaign, MostFaultsVanish) {
  // The paper's headline derating: the large majority of latch flips have
  // no effect.
  const avp::Testcase tc = small_testcase(31);
  CampaignConfig cfg;
  cfg.seed = 5;
  cfg.num_injections = 300;
  const CampaignResult r = run_campaign(tc, cfg);
  EXPECT_GT(r.counts().fraction(Outcome::Vanished), 0.75);
  EXPECT_LT(r.counts().fraction(Outcome::BadArchState), 0.05);
}

TEST(Campaign, RawModeKillsRecoveries) {
  const avp::Testcase tc = small_testcase(41);
  CampaignConfig raw;
  raw.seed = 6;
  raw.num_injections = 200;
  raw.core.checkers_enabled = false;
  const CampaignResult r = run_campaign(tc, raw);
  EXPECT_EQ(r.counts().of(Outcome::Corrected), 0u);
  EXPECT_EQ(r.counts().of(Outcome::Checkstop), 0u);
}

TEST(SampleSize, SigmaOverMuFallsWithFlips) {
  // Synthetic pool with known proportions: σ/µ must fall roughly as
  // 1/sqrt(X) — the paper's Figure 2 shape.
  stats::Xoshiro256 rng(17);
  std::vector<InjectionRecord> pool(40000);
  for (auto& rec : pool) {
    const double u = rng.uniform();
    rec.outcome = u < 0.9    ? Outcome::Vanished
                  : u < 0.97 ? Outcome::Corrected
                  : u < 0.99 ? Outcome::Hang
                             : Outcome::Checkstop;
  }
  SampleSizeConfig cfg;
  cfg.flip_counts = {200, 800, 3200, 12800};
  cfg.samples_per_point = 12;
  const auto pts = sample_size_study(pool, cfg);
  ASSERT_EQ(pts.size(), 4u);
  const auto corrected = static_cast<std::size_t>(Outcome::Corrected);
  EXPECT_GT(pts[0].stddev_over_mean[corrected],
            pts[3].stddev_over_mean[corrected]);
  // Mean counts scale linearly with X.
  EXPECT_NEAR(pts[1].mean_counts[corrected],
              4 * pts[0].mean_counts[corrected],
              pts[1].mean_counts[corrected] * 0.5 + 4);
}

TEST(SampleSize, BootstrapWhenPoolSmall) {
  std::vector<InjectionRecord> pool(100);
  for (auto& rec : pool) rec.outcome = Outcome::Vanished;
  SampleSizeConfig cfg;
  cfg.flip_counts = {500};  // larger than the pool: bootstrap path
  const auto pts = sample_size_study(pool, cfg);
  EXPECT_EQ(pts[0].mean_counts[static_cast<std::size_t>(Outcome::Vanished)],
            500.0);
}

TEST(SampleSize, CrossoverBetweenExactAndBootstrap) {
  // flips == pool.size() is the last without-replacement point (k == n:
  // every sample is the whole pool, so the mean is exact and σ/µ is 0);
  // flips == pool.size() + 1 is the first bootstrap point. The estimator
  // is the same on both sides: means match the pool proportions, and the
  // curve is a pure function of the seed.
  std::vector<InjectionRecord> pool(1000);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].outcome = i % 5 == 0 ? Outcome::Corrected : Outcome::Vanished;
  }
  SampleSizeConfig cfg;
  cfg.flip_counts = {1000, 1001};
  cfg.samples_per_point = 16;
  const auto pts = sample_size_study(pool, cfg);
  ASSERT_EQ(pts.size(), 2u);
  const auto van = static_cast<std::size_t>(Outcome::Vanished);
  const auto cor = static_cast<std::size_t>(Outcome::Corrected);
  EXPECT_EQ(pts[0].mean_counts[van], 800.0);
  EXPECT_EQ(pts[0].mean_counts[cor], 200.0);
  EXPECT_EQ(pts[0].stddev_over_mean[van], 0.0);
  EXPECT_NEAR(pts[1].mean_counts[van], 800.8, 30.0);
  EXPECT_NEAR(pts[1].mean_counts[cor], 200.2, 30.0);
  // Deterministic: same pool + seed reproduces the curve bit-for-bit.
  const auto again = sample_size_study(pool, cfg);
  for (std::size_t p = 0; p < pts.size(); ++p) {
    EXPECT_EQ(pts[p].mean_counts, again[p].mean_counts);
    EXPECT_EQ(pts[p].stddev_over_mean, again[p].stddev_over_mean);
  }
}

TEST(Campaign, FaultIdentityIndependentOfCampaignSize) {
  // Fault i is derived from (seed, i) alone — never from n — so growing a
  // campaign (or early-stopping one) keeps every already-run (seed, i)
  // record valid. This is the identity resume, merge and the engine A/B
  // gate all lean on.
  avp::TestcaseConfig tcfg;
  tcfg.seed = 2026;
  tcfg.num_instructions = 60;
  const avp::Testcase tc = avp::generate_testcase(tcfg);
  CampaignConfig small;
  small.seed = 9;
  small.num_injections = 24;
  CampaignConfig big = small;
  big.num_injections = 48;
  const CampaignPlan ps = plan_campaign(tc, small);
  const CampaignPlan pb = plan_campaign(tc, big);
  ASSERT_EQ(ps.faults.size(), 24u);
  ASSERT_EQ(pb.faults.size(), 48u);
  for (std::size_t i = 0; i < ps.faults.size(); ++i) {
    EXPECT_EQ(ps.faults[i].cycle, pb.faults[i].cycle);
    EXPECT_EQ(ps.faults[i].index, pb.faults[i].index);
    EXPECT_EQ(ps.faults[i].target, pb.faults[i].target);
    EXPECT_EQ(ps.faults[i].mode, pb.faults[i].mode);
  }
}

}  // namespace
}  // namespace sfi::inject
