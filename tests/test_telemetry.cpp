// Campaign telemetry: registry semantics, sink formats, and the headline
// guarantee — telemetry is strictly read-only, so a campaign run with every
// sink enabled produces byte-identical records to one with telemetry off.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "avp/testgen.hpp"
#include "sched/scheduler.hpp"
#include "sfi/campaign.hpp"
#include "sfi/telemetry.hpp"
#include "store/merge.hpp"
#include "store/reader.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/events.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace sfi {
namespace {

/// Per-test scratch file, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sfi_telemetry_" + name))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndEscapes) {
  telemetry::JsonWriter w;
  w.begin_object()
      .field("s", "a\"b\\c\nd")
      .field("n", u64{42})
      .field("f", 1.5)
      .field("b", true)
      .key("arr")
      .begin_array()
      .value(u64{1})
      .value(u64{2})
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"f\":1.5,\"b\":true,"
            "\"arr\":[1,2]}");
}

TEST(JsonWriter, ControlCharactersAreUnicodeEscaped) {
  telemetry::JsonWriter w;
  w.begin_object().field("s", std::string_view("\x01", 1)).end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"\\u0001\"}");
}

// --- metrics registry -----------------------------------------------------

TEST(Metrics, CounterShardMergeIsIdempotent) {
  telemetry::MetricsRegistry reg;
  const auto c = reg.counter("hits");
  telemetry::MetricsShard shard = reg.make_shard();
  shard.add(c);
  shard.add(c, 4);
  EXPECT_EQ(shard.counter(c), 5u);
  EXPECT_EQ(reg.counter_value(c), 0u);  // not merged yet

  reg.merge(shard);
  EXPECT_EQ(reg.counter_value(c), 5u);
  EXPECT_EQ(shard.counter(c), 0u);  // merge zeroes the shard...
  reg.merge(shard);                 // ...so a re-merge is a no-op
  EXPECT_EQ(reg.counter_value(c), 5u);

  shard.add(c, 2);
  reg.merge(shard);
  EXPECT_EQ(reg.counter_value(c), 7u);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  telemetry::MetricsRegistry reg;
  const auto h = reg.histogram("lat", {1.0, 10.0, 100.0});
  telemetry::MetricsShard shard = reg.make_shard();
  shard.observe(h, 0.5);    // bucket 0: <= 1
  shard.observe(h, 1.0);    // bucket 0: boundary is inclusive
  shard.observe(h, 5.0);    // bucket 1
  shard.observe(h, 1000.0); // overflow bucket
  reg.merge(shard);

  EXPECT_EQ(reg.histogram_count(h), 4u);
  EXPECT_DOUBLE_EQ(reg.histogram_sum(h), 1006.5);
  const auto& buckets = reg.histogram_buckets(h);
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, QuantilePinnedValues) {
  // bounds {1,2,4}, buckets {2,4,2} + 2 overflow; 10 observations total.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<u64> buckets = {2, 4, 2, 2};

  // Prometheus convention: rank = q * total, linear interpolation inside
  // the holding bucket, first bucket interpolates from 0, overflow clamps
  // to the last finite bound. Every value below is hand-computed.
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, 0.5), 1.75);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, 0.75), 3.5);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, 0.95), 4.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, 0.99), 4.0);
  // q outside [0,1] clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, 1.5), 4.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, buckets, -0.5), 0.0);

  // Empty histogram: 0, not NaN.
  EXPECT_DOUBLE_EQ(
      telemetry::histogram_quantile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
  // A rank landing in an empty bucket resolves to that bucket's bound.
  EXPECT_DOUBLE_EQ(
      telemetry::histogram_quantile(bounds, {0, 0, 0, 5}, 0.1), 4.0);

  // The snapshot-side helper is the same estimator.
  telemetry::MetricsSnapshot::Hist h;
  h.bounds = bounds;
  h.buckets = buckets;
  h.count = 10;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.75);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 4.0);
}

TEST(Metrics, QuantileDegenerateShapes) {
  // No buckets at all (a snapshot from a build with no histograms, or a
  // truncated 'M' frame): 0, never an out-of-bounds read.
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile({}, {}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile({}, {7}, 0.99), 0.0);

  // Single finite bucket: every quantile interpolates within [0, bound].
  const std::vector<double> one_bound = {8.0};
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(one_bound, {4, 0}, 0.5),
                   4.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(one_bound, {4, 0}, 1.0),
                   8.0);

  // All mass in the overflow bucket: the estimator has no finite upper
  // edge, so it clamps to the last finite bound instead of inventing one.
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(one_bound, {0, 9}, 0.01),
                   8.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(one_bound, {0, 9}, 0.99),
                   8.0);

  // And the same shapes through the snapshot-side helper.
  telemetry::MetricsSnapshot::Hist empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  telemetry::MetricsSnapshot::Hist overflow_only;
  overflow_only.bounds = one_bound;
  overflow_only.buckets = {0, 9};
  overflow_only.count = 9;
  EXPECT_DOUBLE_EQ(overflow_only.quantile(0.5), 8.0);
}

TEST(Metrics, SnapshotMergeAddsAndUnions) {
  telemetry::MetricsRegistry a;
  const auto ca = a.counter("hits");
  const auto ga = a.gauge("level");
  const auto ha = a.histogram("lat", {1.0, 2.0});
  a.add(ca, 3);
  a.set_gauge(ga, 1.0);
  a.observe(ha, 0.5);

  telemetry::MetricsRegistry b;
  const auto cb = b.counter("hits");
  const auto cb2 = b.counter("misses");  // only registered in b
  const auto gb = b.gauge("level");
  const auto hb = b.histogram("lat", {1.0, 2.0});
  b.add(cb, 4);
  b.add(cb2, 9);
  b.set_gauge(gb, 2.0);
  b.observe(hb, 1.5);
  b.observe(hb, 9.0);

  telemetry::MetricsSnapshot s = a.snapshot();
  s.merge_from(b.snapshot());

  // Counters add; instruments unknown on one side are unioned in.
  EXPECT_EQ(s.counter_value("hits"), 7u);
  EXPECT_EQ(s.counter_value("misses"), 9u);
  EXPECT_EQ(s.counter_value("unknown"), 0u);
  // Gauges are levels: last write (the merged-in snapshot) wins.
  EXPECT_DOUBLE_EQ(s.gauge_value("level"), 2.0);
  // Histogram buckets add element-wise.
  const telemetry::MetricsSnapshot::Hist* h = s.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->sum, 11.0);
  ASSERT_EQ(h->buckets.size(), 3u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 1u);
  EXPECT_EQ(h->buckets[2], 1u);

  // Merging is associative enough for the fleet use: folding the same
  // worker snapshot into a fresh base twice gives doubled counters (the
  // coordinator guards against this by keeping only the LATEST snapshot
  // per worker; this just pins the additive semantics it relies on).
  telemetry::MetricsSnapshot twice = a.snapshot();
  twice.merge_from(b.snapshot());
  twice.merge_from(b.snapshot());
  EXPECT_EQ(twice.counter_value("hits"), 11u);
}

TEST(Metrics, ExpBucketsAreStrictlyIncreasing) {
  const auto b = telemetry::exp_buckets(1e-6, 10.0, 3);
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  EXPECT_GE(b.back(), 10.0 - 1e-9);
}

TEST(Metrics, ToJsonCarriesEveryInstrument) {
  telemetry::MetricsRegistry reg;
  const auto c = reg.counter("hits");
  const auto g = reg.gauge("level");
  const auto h = reg.histogram("lat", {1.0, 2.0});
  reg.add(c, 3);
  reg.set_gauge(g, 2.5);
  reg.observe(h, 1.5);
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("\"hits\":3"), std::string::npos);
  EXPECT_NE(j.find("\"level\":2.5"), std::string::npos);
  EXPECT_NE(j.find("\"lat\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
}

// --- flight recorder -------------------------------------------------------

TEST(FlightRecorder, DisabledRecorderIsInert) {
  telemetry::FlightRecorder fr;
  EXPECT_FALSE(fr.enabled());
  fr.note("never stored");  // must not crash
  TempFile f("fr_disabled.jsonl");
  EXPECT_EQ(fr.dump(f.path()), 0u);
}

TEST(FlightRecorder, RingOverflowKeepsNewestOldestFirst) {
  telemetry::FlightRecorder fr;
  fr.enable(4);
  ASSERT_TRUE(fr.enabled());
  EXPECT_EQ(fr.capacity(), 4u);
  for (int i = 0; i < 10; ++i) fr.note("line " + std::to_string(i));
  EXPECT_EQ(fr.noted(), 10u);  // wrapped: 10 noted into 4 slots

  TempFile f("fr_ring.jsonl");
  EXPECT_EQ(fr.dump(f.path()), 4u);
  // The survivors are exactly the newest capacity lines, oldest first.
  EXPECT_EQ(slurp(f.path()), "line 6\nline 7\nline 8\nline 9\n");

  // enable() is first-call-wins: the ring must never move or resize once
  // signal handlers may read it.
  fr.enable(64);
  EXPECT_EQ(fr.capacity(), 4u);
}

TEST(FlightRecorder, OverlongLinesAreTruncatedNotDropped) {
  telemetry::FlightRecorder fr;
  fr.enable(2);
  const std::string big(telemetry::FlightRecorder::kLineBytes + 100, 'x');
  fr.note(big);
  TempFile f("fr_trunc.jsonl");
  ASSERT_EQ(fr.dump(f.path()), 1u);
  const std::string out = slurp(f.path());
  EXPECT_EQ(out.size(), telemetry::FlightRecorder::kLineBytes + 1);  // + \n
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(out.find_first_not_of("x\n"), std::string::npos);
}

TEST(FlightRecorder, EventLogTeesIntoGlobalRecorder) {
  // The global recorder is process-wide and first-enable-wins; use a small
  // ring here (other tests in this binary use local instances).
  telemetry::FlightRecorder& g = telemetry::FlightRecorder::global();
  g.enable(16);
  const u64 before = g.noted();
  TempFile f("fr_tee.jsonl");
  telemetry::EventLog log;
  log.open(f.path());
  log.emit("{\"ev\":\"recorded\"}");
  log.flush();
  EXPECT_GE(g.noted(), before + 1);
  TempFile dumped("fr_tee_dump.jsonl");
  ASSERT_GT(g.dump(dumped.path()), 0u);
  EXPECT_NE(slurp(dumped.path()).find("\"ev\":\"recorded\""),
            std::string::npos);
}

// --- event log & chrome trace --------------------------------------------

TEST(EventLog, EmitsOneLinePerEvent) {
  TempFile f("events.jsonl");
  telemetry::EventLog log;
  log.open(f.path());
  log.emit("{\"ev\":\"a\"}");
  log.emit("{\"ev\":\"b\"}");
  log.flush();
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(slurp(f.path()), "{\"ev\":\"a\"}\n{\"ev\":\"b\"}\n");
}

TEST(ChromeTrace, TracksSlicesAndMetadata) {
  telemetry::TraceCollector tc("proc");
  telemetry::TraceTrack& t0 = tc.add_track("worker 0");
  telemetry::TraceTrack& t1 = tc.add_track("worker 1");
  t0.slice("inject", "run", 10, 5, "{\"i\":1}");
  t1.instant("mark", "run", 12);
  const std::string j = tc.to_json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("process_name"), std::string::npos);
  EXPECT_NE(j.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(j.find("\"worker 1\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(j.find("{\"i\":1}"), std::string::npos);
}

// --- campaign integration -------------------------------------------------

avp::Testcase small_testcase() {
  avp::TestcaseConfig cfg;
  cfg.seed = 11;
  cfg.num_instructions = 80;
  return avp::generate_testcase(cfg);
}

inject::CampaignConfig small_campaign(u32 n, u32 threads) {
  inject::CampaignConfig cfg;
  cfg.seed = 77;
  cfg.num_injections = n;
  cfg.threads = threads;
  return cfg;
}

bool records_equal(const inject::InjectionRecord& a,
                   const inject::InjectionRecord& b) {
  return a.fault.index == b.fault.index && a.fault.cycle == b.fault.cycle &&
         a.outcome == b.outcome && a.unit == b.unit && a.type == b.type &&
         a.end_cycle == b.end_cycle && a.early_exited == b.early_exited &&
         a.recoveries == b.recoveries;
}

TEST(CampaignTelemetry, ResultsIdenticalWithAndWithoutTelemetry) {
  const avp::Testcase tc = small_testcase();

  const inject::CampaignResult plain =
      inject::run_campaign(tc, small_campaign(40, 2));

  TempFile events("campaign_events.jsonl");
  inject::CampaignTelemetry tel;
  tel.open_event_log(events.path());
  tel.enable_chrome_trace();
  inject::CampaignConfig cfg = small_campaign(40, 2);
  cfg.telemetry = &tel;
  const inject::CampaignResult traced = inject::run_campaign(tc, cfg);

  ASSERT_EQ(plain.records.size(), traced.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_TRUE(records_equal(plain.records[i], traced.records[i]))
        << "record " << i;
  }

  // The registry's authoritative counters agree with the aggregation.
  EXPECT_EQ(tel.metrics().counter_value_by_name("injections"), 40u);
  for (const auto o : inject::kAllOutcomes) {
    const std::string name = "outcome." + std::string(to_string(o));
    EXPECT_EQ(tel.metrics().counter_value_by_name(name),
              traced.agg.counts.of(o))
        << name;
  }

  // The event log bookends the campaign.
  const std::string log = slurp(events.path());
  EXPECT_NE(log.find("\"ev\":\"campaign_start\""), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"campaign_finish\""), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"injection\""), std::string::npos);
}

TEST(CampaignTelemetry, ProgressLineHasRateAndTallies) {
  inject::CampaignTelemetry tel;
  const std::string line = tel.progress_line(50, 100, 50, 2.0);
  EXPECT_NE(line.find("50/100"), std::string::npos);
  EXPECT_NE(line.find("25 inj/s"), std::string::npos);
  EXPECT_NE(line.find("ETA"), std::string::npos);
  EXPECT_NE(line.find("van"), std::string::npos);
  EXPECT_NE(line.find("sdc"), std::string::npos);
}

TEST(CampaignTelemetry, ProgressLineGuardsDegenerateRate) {
  inject::CampaignTelemetry tel;
  // Zero executed / zero wall time must not divide through to inf/nan ETAs.
  const std::string at_start = tel.progress_line(0, 100, 0, 0.0);
  EXPECT_NE(at_start.find("0/100"), std::string::npos);
  EXPECT_NE(at_start.find("ETA --"), std::string::npos);
  EXPECT_EQ(at_start.find("nan"), std::string::npos);
  EXPECT_EQ(at_start.find("inf"), std::string::npos);

  // Resumed-only progress: everything persisted, nothing executed live.
  const std::string resumed_only = tel.progress_line(80, 100, 0, 5.0);
  EXPECT_NE(resumed_only.find("ETA --"), std::string::npos);

  // done > total (defensive: a resumed store with surplus records) must not
  // print a negative ETA.
  const std::string overshoot = tel.progress_line(120, 100, 120, 2.0);
  EXPECT_NE(overshoot.find("ETA --"), std::string::npos);
}

TEST(CampaignTelemetry, ProgressLineShowsEarlyStopState) {
  inject::CampaignTelemetry tel;
  // No records yet: the half-width is meaningless, print a placeholder.
  EXPECT_NE(tel.progress_line(0, 100, 0, 0.0).find("hw --"),
            std::string::npos);

  // 90/10 split over 100 records: the worst outcome-stratum Wilson
  // half-width is a concrete number, rendered against the stop target.
  for (int i = 0; i < 90; ++i) {
    tel.live_outcome_add(inject::Outcome::Vanished);
  }
  for (int i = 0; i < 10; ++i) {
    tel.live_outcome_add(inject::Outcome::Corrected);
  }
  tel.set_stop_target(0.95, 0.05);
  const std::string line = tel.progress_line(100, 600, 100, 1.0);
  const auto hw = line.find(" hw 0.0");
  ASSERT_NE(hw, std::string::npos) << line;
  EXPECT_NE(line.find("/0.05", hw), std::string::npos) << line;
  EXPECT_EQ(line.find("hw --"), std::string::npos);
}

TEST(CampaignTelemetry, FleetSnapshotFoldsWorkerReports) {
  inject::CampaignTelemetry tel;
  EXPECT_EQ(tel.fleet_workers(), 0u);

  telemetry::MetricsSnapshot w0;
  w0.counters.emplace_back("injections", 10);
  telemetry::MetricsSnapshot w0_later;
  w0_later.counters.emplace_back("injections", 25);
  telemetry::MetricsSnapshot w1;
  w1.counters.emplace_back("injections", 7);

  tel.note_worker_snapshot(0, 0, w0);
  tel.note_worker_snapshot(0, 0, w0_later);  // same worker: latest wins
  tel.note_worker_snapshot(1, 0, w1);
  EXPECT_EQ(tel.fleet_workers(), 2u);
  // Snapshots are cumulative per worker, so the fleet view is the sum of
  // the LATEST report per (slot, generation) — not of every report.
  EXPECT_EQ(tel.fleet_snapshot().counter_value("injections"), 32u);

  // A replacement worker (new generation) adds rather than overwrites: the
  // crashed predecessor's final counts stay in the fleet view.
  telemetry::MetricsSnapshot w0g1;
  w0g1.counters.emplace_back("injections", 3);
  tel.note_worker_snapshot(0, 1, w0g1);
  EXPECT_EQ(tel.fleet_workers(), 3u);
  EXPECT_EQ(tel.fleet_snapshot().counter_value("injections"), 35u);
}

TEST(CampaignTelemetry, EventSamplingThinsInjectionRecords) {
  const avp::Testcase tc = small_testcase();
  TempFile events("sampled_events.jsonl");
  inject::TelemetryConfig tcfg;
  tcfg.event_sample = 0;  // lifecycle only
  tcfg.slice_sample = 0;
  inject::CampaignTelemetry tel(tcfg);
  tel.open_event_log(events.path());
  inject::CampaignConfig cfg = small_campaign(20, 1);
  cfg.telemetry = &tel;
  (void)inject::run_campaign(tc, cfg);
  const std::string log = slurp(events.path());
  EXPECT_EQ(log.find("\"ev\":\"injection\""), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"campaign_finish\""), std::string::npos);
}

TEST(ScheduledTelemetry, StoreBytesIdenticalWithTelemetryOn) {
  const avp::Testcase tc = small_testcase();

  // Single-threaded: append order is deterministic, so the raw store files
  // must match byte for byte.
  TempFile plain_store("plain.sfr");
  TempFile traced_store("traced.sfr");
  TempFile events("sched_events.jsonl");

  sched::SchedulerConfig sc;
  sc.threads = 1;
  (void)sched::run_campaign_to_store(tc, small_campaign(30, 1),
                                     plain_store.path(), sc);

  inject::CampaignTelemetry tel;
  tel.open_event_log(events.path());
  tel.enable_chrome_trace();
  inject::CampaignConfig cfg = small_campaign(30, 1);
  cfg.telemetry = &tel;
  const sched::ScheduledResult r =
      sched::run_campaign_to_store(tc, cfg, traced_store.path(), sc);

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(slurp(plain_store.path()), slurp(traced_store.path()));

  // Shard lifecycle made it into the event log.
  const std::string log = slurp(events.path());
  EXPECT_NE(log.find("\"ev\":\"shard_dispatch\""), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"shard_complete\""), std::string::npos);
}

TEST(ScheduledTelemetry, CanonicalMergeIdenticalAcrossThreadCounts) {
  const avp::Testcase tc = small_testcase();

  // Multi-threaded append order is nondeterministic; the canonical merge is
  // the byte-identity surface (same guarantee the store tests rely on).
  TempFile plain_store("mt_plain.sfr");
  TempFile traced_store("mt_traced.sfr");
  TempFile plain_merged("mt_plain_merged.sfr");
  TempFile traced_merged("mt_traced_merged.sfr");

  sched::SchedulerConfig sc;
  sc.threads = 3;
  sc.shard_size = 4;
  (void)sched::run_campaign_to_store(tc, small_campaign(36, 3),
                                     plain_store.path(), sc);

  inject::CampaignTelemetry tel;
  tel.enable_chrome_trace();
  inject::CampaignConfig cfg = small_campaign(36, 3);
  cfg.telemetry = &tel;
  (void)sched::run_campaign_to_store(tc, cfg, traced_store.path(), sc);

  (void)store::merge_stores({plain_store.path()}, plain_merged.path());
  (void)store::merge_stores({traced_store.path()}, traced_merged.path());
  EXPECT_EQ(slurp(plain_merged.path()), slurp(traced_merged.path()));
}

TEST(ScheduledTelemetry, ProgressReportsExecutedAndWall) {
  const avp::Testcase tc = small_testcase();
  TempFile store("progress.sfr");
  sched::SchedulerConfig sc;
  sc.threads = 1;
  sc.flush_records = 8;
  std::vector<sched::Progress> seen;
  sc.on_progress = [&](const sched::Progress& p) { seen.push_back(p); };
  (void)sched::run_campaign_to_store(tc, small_campaign(24, 1), store.path(),
                                     sc);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front().executed, 0u);
  EXPECT_EQ(seen.back().done, 24u);
  EXPECT_EQ(seen.back().executed, 24u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i].executed, seen[i - 1].executed);
    EXPECT_GE(seen[i].wall_seconds, seen[i - 1].wall_seconds);
    EXPECT_GE(seen[i].steady_us, seen[i - 1].steady_us);
  }
}

}  // namespace
}  // namespace sfi
