// Distributed span plane (telemetry/span, store 'S' frames, trace_stitch):
// the campaign-scoped tracing layer farm/serve processes record into their
// stores and `sfi trace` stitches back together.
//
// Load-bearing assertions:
//   * 'S' frames are invisible to every consumer of campaign data — readers
//     skip them, the canonical merge drops them — so the merged store is
//     byte-identical with the plane on or off (the observability-only
//     contract every telemetry surface in this repo honours);
//   * SpanRecord codec round-trips exactly and rejects malformed input;
//   * SpanBook timestamps are wall-anchored and monotonic, so a stitcher
//     can overlay processes with no clock coordination;
//   * TailExemplarPolicy always records injections beyond the moving p99
//     and samples the rest 1-in-N;
//   * a farm campaign with the plane on leaves a stitchable sidecar with
//     one process row per OS process and the dispatch→shard parent link.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "avp/testgen.hpp"
#include "farm/farm.hpp"
#include "sfi/telemetry.hpp"
#include "store/codec.hpp"
#include "store/merge.hpp"
#include "store/reader.hpp"
#include "store/trace_stitch.hpp"
#include "store/writer.hpp"
#include "telemetry/span.hpp"

namespace sfi {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sfi_trace_plane_test_" + name + ".sfr"))
                  .string()) {
    std::filesystem::remove(path_);
    std::filesystem::remove(sidecar());
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(sidecar(), ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string sidecar() const {
    std::string base = path_;
    base.resize(base.size() - 4);  // strip ".sfr"
    return base + ".trace.sfr";
  }

 private:
  std::string path_;
};

std::vector<u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

telemetry::SpanRecord sample_span() {
  telemetry::SpanRecord sp;
  sp.trace_id = 0xCAFE;
  sp.span_id = 42;
  sp.parent_id = 7;
  sp.pid = 1234;
  sp.tid = 3;
  sp.ph = 'X';
  sp.ts_us = 1'700'000'000'000'000ull;
  sp.dur_us = 250;
  sp.process = "sfi worker 3";
  sp.name = "shard 9 attempt 1";
  sp.cat = "shard.exec";
  sp.args_json = R"({"shard":9})";
  return sp;
}

store::CampaignMeta tiny_meta() {
  store::CampaignMeta meta;
  meta.seed = 1;
  meta.num_injections = 4;
  return meta;
}

TEST(SpanCodec, RoundTripsEveryField) {
  const telemetry::SpanRecord sp = sample_span();
  const std::vector<u8> bytes = store::encode_span(sp);
  const telemetry::SpanRecord back = store::decode_span(bytes);
  EXPECT_EQ(back.trace_id, sp.trace_id);
  EXPECT_EQ(back.span_id, sp.span_id);
  EXPECT_EQ(back.parent_id, sp.parent_id);
  EXPECT_EQ(back.pid, sp.pid);
  EXPECT_EQ(back.tid, sp.tid);
  EXPECT_EQ(back.ph, sp.ph);
  EXPECT_EQ(back.ts_us, sp.ts_us);
  EXPECT_EQ(back.dur_us, sp.dur_us);
  EXPECT_EQ(back.process, sp.process);
  EXPECT_EQ(back.name, sp.name);
  EXPECT_EQ(back.cat, sp.cat);
  EXPECT_EQ(back.args_json, sp.args_json);
}

TEST(SpanCodec, RejectsUnknownPhase) {
  telemetry::SpanRecord sp = sample_span();
  sp.ph = 'Z';
  const std::vector<u8> bytes = store::encode_span(sp);
  EXPECT_THROW((void)store::decode_span(bytes), store::StoreError);
}

TEST(SpanCodec, RejectsTruncatedPayload) {
  std::vector<u8> bytes = store::encode_span(sample_span());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)store::decode_span(bytes), store::StoreError);
}

TEST(SpanFrames, InvisibleToReadersAndDroppedByMerge) {
  TempFile with("with_spans"), without("without_spans"), merged("merged");
  const store::CampaignMeta meta = tiny_meta();
  const auto write_records = [&](store::StoreWriter& w) {
    for (u32 i = 0; i < 4; ++i) {
      store::StoredRecord sr;
      sr.index = i;
      sr.rec.outcome = inject::Outcome::Vanished;
      w.append(sr);
    }
  };
  {
    store::StoreWriter w = store::StoreWriter::create(with.path(), meta);
    w.append_span(sample_span());
    write_records(w);
    w.append_span(sample_span());
    w.flush();
  }
  {
    store::StoreWriter w = store::StoreWriter::create(without.path(), meta);
    write_records(w);
    w.flush();
  }

  // Readers surface the records and skip 'S' silently.
  const store::StoreContents c = store::read_store(with.path());
  EXPECT_EQ(c.records.size(), 4u);

  // The canonical merge of the span-bearing store is byte-identical to the
  // merge of the clean one: 'S' never reaches campaign data.
  TempFile merged2("merged2");
  (void)store::merge_stores({with.path()}, merged.path());
  (void)store::merge_stores({without.path()}, merged2.path());
  EXPECT_EQ(slurp(merged.path()), slurp(merged2.path()));

  // And the raw frame stream of the merged store contains no 'S'.
  store::StoreReader r(merged.path());
  u8 kind = 0;
  std::vector<u8> payload;
  while (r.next_frame(kind, payload)) {
    EXPECT_NE(kind, store::kSpanFrame);
  }
}

TEST(SpanBook, WallAnchoredMonotonicIds) {
  telemetry::SpanBook book("proc");
  const u64 wall_now = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // The anchor is the construction instant, so now_us() tracks the wall
  // clock to well under a minute even on a loaded box.
  const u64 t0 = book.now_us();
  EXPECT_LT(t0 > wall_now ? t0 - wall_now : wall_now - t0, 60'000'000ull);
  const u64 t1 = book.now_us();
  EXPECT_GE(t1, t0);

  book.set_trace_id(99);
  const u64 a = book.slice("a", "cat", t0, 5);
  const u64 b = book.instant("b", "cat", t1, a);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, a);
  // Ids fold in the pid, so two processes can never collide.
  EXPECT_EQ(a >> 24, book.pid());

  EXPECT_EQ(book.size(), 2u);
  const auto snap = book.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(book.size(), 2u);  // snapshot copies
  const auto drained = book.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(book.size(), 0u);  // drain moves
  EXPECT_EQ(drained[0].trace_id, 99u);
  EXPECT_EQ(drained[1].parent_id, a);
  EXPECT_EQ(drained[0].process, "proc");
  EXPECT_EQ(drained[0].ph, 'X');
  EXPECT_EQ(drained[1].ph, 'i');
}

TEST(TailExemplarPolicy, SamplesDuringWarmupThenFlagsTail) {
  telemetry::TailExemplarPolicy policy(/*sample_every=*/16, /*warmup=*/64);
  // Warmup: threshold undefined, decisions are pure 1-in-16 sampling.
  u32 recorded = 0;
  for (u32 i = 0; i < 64; ++i) {
    const auto d = policy.note(100);
    EXPECT_FALSE(d.exemplar);
    if (d.record) ++recorded;
  }
  EXPECT_EQ(recorded, 4u);  // 64 / 16

  // Warmed on a uniform 100us workload: a 100x outlier must always record,
  // tagged as an exemplar.
  for (u32 i = 0; i < 64; ++i) (void)policy.note(100);
  const auto slow = policy.note(10'000);
  EXPECT_TRUE(slow.record);
  EXPECT_TRUE(slow.exemplar);
  EXPECT_GE(policy.exemplars(), 1u);
  // And the p99 threshold sits at the top bucket of the 100us mass, far
  // below the outlier.
  EXPECT_LT(policy.threshold_us(), 10'000u);
  EXPECT_GE(policy.threshold_us(), 63u);  // >= the 100us bucket's lower edge

  // A typical injection after warmup is still sampled, not always-on.
  u32 post = 0;
  for (u32 i = 0; i < 160; ++i) {
    if (policy.note(100).record) ++post;
  }
  EXPECT_EQ(post, 10u);  // 160 / 16
}

TEST(ChromeJson, ProcessRowsAndTsNormalization) {
  std::vector<telemetry::SpanRecord> spans;
  telemetry::SpanRecord a = sample_span();
  a.pid = 1;
  a.process = "alpha";
  a.ts_us = 1000;
  telemetry::SpanRecord b = sample_span();
  b.pid = 2;
  b.process = "beta";
  b.ts_us = 1500;
  b.ph = 'i';
  spans = {a, b};
  const std::string json = telemetry::spans_to_chrome_json(spans);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Earliest span normalizes to ts 0; the other keeps its 500us offset.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500"), std::string::npos);
}

TEST(ChromeJson, EscapesHostileSpanNames) {
  telemetry::SpanRecord sp = sample_span();
  sp.name = "quote\" backslash\\ newline\n tab\t bell\x07";
  sp.cat = "c\"at";
  sp.args_json.clear();
  const std::string json = telemetry::spans_to_chrome_json({sp});
  // The document must stay parseable JSON: every hostile byte escaped.
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n tab\\t"),
            std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_EQ(json.find('\x07'), std::string::npos);
  EXPECT_NE(json.find("c\\\"at"), std::string::npos);
}

TEST(TraceStitch, MissingFilesYieldEmptyResult) {
  const store::StitchResult r =
      store::stitch_trace("/nonexistent/dir/nothing.sfr");
  EXPECT_EQ(r.spans, 0u);
  EXPECT_EQ(r.processes, 0u);
  EXPECT_NE(r.json.find("traceEvents"), std::string::npos);
}

TEST(FarmTracePlane, SidecarStitchesAndStoreBytesIdentical) {
  avp::TestcaseConfig tcfg;
  tcfg.seed = 11;
  tcfg.num_instructions = 60;
  const avp::Testcase tc = avp::generate_testcase(tcfg);
  inject::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = 24;

  const auto run = [&](const std::string& tag, bool spans,
                       std::string* sidecar_out) -> std::vector<u8> {
    TempFile out("farm_" + tag);
    inject::CampaignTelemetry tel;
    inject::CampaignConfig run_cfg = cfg;
    run_cfg.telemetry = &tel;
    farm::FarmConfig fc;
    fc.workers = 2;
    fc.shard_size = 8;
    fc.watchdog_seconds = 20.0;
    fc.poll_seconds = 0.005;
    fc.trace_spans = spans;
    fc.sabotage.crash_index = 5;  // one kill -9 mid-shard => retry spans
    const farm::FarmResult r =
        farm::run_farm_campaign(tc, run_cfg, out.path(), fc);
    EXPECT_TRUE(r.complete);
    if (sidecar_out != nullptr) {
      *sidecar_out = out.sidecar();
      // Keep the sidecar alive past TempFile destruction for stitching.
      const std::string kept = out.sidecar() + ".kept";
      std::filesystem::copy_file(
          out.sidecar(), kept,
          std::filesystem::copy_options::overwrite_existing);
      *sidecar_out = kept;
    }
    return slurp(out.path());
  };

  std::string sidecar;
  const std::vector<u8> with = run("on", true, &sidecar);
  const std::vector<u8> without = run("off", false, nullptr);
  // The observability-only gate: canonical store bytes never depend on the
  // span plane.
  EXPECT_EQ(with, without);

  // The sidecar alone stitches into a multi-process trace with the
  // coordinator's dispatch spans, worker shard slices, and the retry span
  // from the sabotaged worker.
  const std::vector<telemetry::SpanRecord> spans =
      store::read_spans(sidecar);
  ASSERT_FALSE(spans.empty());
  std::set<u64> pids;
  bool saw_dispatch = false;
  bool saw_shard = false;
  bool saw_retry = false;
  bool parent_link = false;
  std::set<u64> coordinator_ids;
  for (const telemetry::SpanRecord& sp : spans) {
    pids.insert(sp.pid);
    if (sp.cat == "farm.dispatch") {
      saw_dispatch = true;
      coordinator_ids.insert(sp.span_id);
    }
    if (sp.cat == "farm.retry") saw_retry = true;
  }
  for (const telemetry::SpanRecord& sp : spans) {
    if (sp.cat == "shard.exec") {
      saw_shard = true;
      if (coordinator_ids.contains(sp.parent_id)) parent_link = true;
    }
  }
  EXPECT_GE(pids.size(), 2u) << "coordinator + at least one worker pid";
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(parent_link)
      << "worker shard slices must parent under coordinator dispatch spans";

  std::filesystem::remove(sidecar);
}

}  // namespace
}  // namespace sfi
