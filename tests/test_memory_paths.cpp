// Targeted injections into the memory-path structures: caches, ERAT, store
// queue. These exercise the LSU/IFU checker+recovery plumbing on known
// addresses, including the one architecturally-unrecoverable window in the
// core (a committed store corrupted before drain).
#include <gtest/gtest.h>

#include "avp/runner.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "sfi/runner.hpp"

namespace sfi {
namespace {

using inject::FaultSpec;
using inject::Outcome;

struct Harness {
  avp::Testcase tc;
  avp::GoldenResult golden;
  core::Pearl6Model model;
  std::unique_ptr<emu::Emulator> emu;
  emu::Checkpoint cp;
  emu::GoldenTrace trace;
  std::unique_ptr<inject::InjectionRunner> runner;

  explicit Harness(std::string_view src) {
    tc.program.code = isa::assemble(src);
    golden = avp::run_golden(tc);
    emu = std::make_unique<emu::Emulator>(model);
    trace = avp::run_reference(model, *emu, tc);
    emu->reset();
    cp = emu->save_checkpoint();
    runner = std::make_unique<inject::InjectionRunner>(model, *emu, cp, trace,
                                                       golden,
                                                       inject::RunConfig{});
  }

  [[nodiscard]] u32 ordinal(std::string_view name, u32 bit = 0) const {
    const auto ords = model.registry().collect_ordinals(
        [&](const netlist::LatchMeta& m) { return m.name == name; });
    EXPECT_FALSE(ords.empty()) << name;
    EXPECT_LT(bit, ords.size()) << name;
    return ords[bit];
  }

  [[nodiscard]] inject::RunResult flip(std::string_view name, u32 bit,
                                       Cycle cycle) {
    FaultSpec f;
    f.index = ordinal(name, bit);
    f.cycle = cycle;
    return runner->run(f);
  }
};

// Load-heavy loop hammering one D-cache line.
constexpr std::string_view kLoadLoop = R"(
    li r1, 0x4000
    li r2, 120
    mtctr r2
    li r3, 0
  loop:
    lwz r4, 0(r1)
    add r3, r3, r4
    bdnz loop
    li r5, 0x5000
    stw r3, 0(r5)
    stop
)";

TEST(MemoryPaths, LiveDcacheTagFlipRecovers) {
  Harness h(kLoadLoop);
  // 0x4000 maps to d-cache line 0; its tag is read on every load hit.
  const auto r = h.flip("lsu.dcache.t0.tag", 3, 60);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
}

TEST(MemoryPaths, LiveDcacheValidFlipIsBenignMiss) {
  Harness h(kLoadLoop);
  // Valid 1→0 with correct parity update impossible via single flip: the
  // parity covers {valid, tag}, so the flip is *detected*. Either way the
  // line refetches from (authoritative) memory: never SDC.
  const auto r = h.flip("lsu.dcache.t0.v", 0, 60);
  EXPECT_TRUE(r.outcome == Outcome::Corrected ||
              r.outcome == Outcome::Vanished)
      << to_string(r.outcome);
  if (!r.early_exited) {
    const auto v =
        avp::check_against_golden(h.model, h.emu->state(), h.golden);
    EXPECT_TRUE(v.state_matches) << v.first_diff;
  }
}

TEST(MemoryPaths, LiveEratPpnFlipRecovers) {
  Harness h(kLoadLoop);
  // 0x4000 is page 4: its ERAT entry translates every loop load.
  const auto r = h.flip("lsu.erat4.ppn", 1, 60);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
  EXPECT_GE(r.recoveries, 1u);
}

TEST(MemoryPaths, ColdEratEntryFlipVanishes) {
  Harness h(kLoadLoop);
  // Page 9 is never accessed by this program.
  const auto r = h.flip("lsu.erat9.ppn", 2, 60);
  EXPECT_EQ(r.outcome, Outcome::Vanished);
}

TEST(MemoryPaths, EratValidFlipCostsOnlyARefill) {
  Harness h(kLoadLoop);
  // Valid 1→0: next access misses, the fill sequencer rebuilds the entry
  // (identity translation) — a timing-only event. Parity may or may not
  // flag first; either way the result is architecturally clean.
  const auto r = h.flip("lsu.erat4.v", 0, 60);
  EXPECT_TRUE(r.outcome == Outcome::Vanished ||
              r.outcome == Outcome::Corrected)
      << to_string(r.outcome);
  if (!r.early_exited) {
    const auto v =
        avp::check_against_golden(h.model, h.emu->state(), h.golden);
    EXPECT_TRUE(v.state_matches) << v.first_diff;
  }
}

TEST(MemoryPaths, LiveIcacheTagFlipRecovers) {
  Harness h(kLoadLoop);
  // The loop body sits in icache line 1 (0x1010); its tag is checked every
  // fetch.
  const auto r = h.flip("ifu.icache.t1.tag", 2, 60);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
}

TEST(MemoryPaths, FetchPcFlipRecoversViaParityAndQuiesce) {
  Harness h(kLoadLoop);
  // Regression for the recovery re-fire bug: the corrupted fetch PC is
  // reported once, fetch quiesces during restore, and the refetch rewrites
  // the PC — a single clean recovery, not a checkstop.
  const auto r = h.flip("ifu.fetch_pc", 7, 60);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
  EXPECT_EQ(r.recoveries, 1u);
}

// Store-heavy loop keeping the store queue busy.
constexpr std::string_view kStoreLoop = R"(
    li r1, 0x6000
    li r2, 100
    mtctr r2
    li r3, 7
  loop:
    stw r3, 0(r1)
    addi r3, r3, 1
    bdnz loop
    stop
)";

TEST(MemoryPaths, StqSweepNeverSilentlyCorrupts) {
  Harness h(kStoreLoop);
  // Sweep injection cycles over a live store-queue entry's data. A flip
  // caught at the commit boundary recovers (the store re-executes); any
  // other landing must vanish. Silent corruption would be a checker hole.
  inject::OutcomeCounts counts;
  // Step by 1: a given queue slot is at its commit boundary for exactly one
  // cycle per rotation, so a coarser sweep can miss every live window.
  for (Cycle c = 20; c < 140; ++c) {
    const auto r = h.flip("lsu.stq0.data", 11, c);
    counts.add(r.outcome);
    // (An early-exited run leaves the machine mid-execution — provably
    // convergent, but the *final*-state compare only applies to runs that
    // reached STOP.)
    if (!r.early_exited &&
        (r.outcome == Outcome::Vanished || r.outcome == Outcome::Corrected)) {
      const auto v =
          avp::check_against_golden(h.model, h.emu->state(), h.golden);
      EXPECT_TRUE(v.state_matches) << "cycle " << c << ": " << v.first_diff;
      EXPECT_TRUE(v.memory_matches) << "cycle " << c;
    }
  }
  EXPECT_EQ(counts.of(Outcome::BadArchState), 0u);
  EXPECT_EQ(counts.of(Outcome::Hang), 0u);
  // The sweep crosses live entries: something must have been detected.
  EXPECT_GT(counts.of(Outcome::Corrected) + counts.of(Outcome::Checkstop),
            0u);
}

TEST(MemoryPaths, StqPointerFlipNeverHangsSilently) {
  Harness h(kStoreLoop);
  // Queue-pointer flips are the classic unprotected-control hazard: the
  // model must end in a *defined* state for every landing cycle.
  for (const char* name : {"lsu.stq.head", "lsu.stq.tail", "lsu.stq.count"}) {
    for (Cycle c = 25; c < 85; c += 10) {
      const auto r = h.flip(name, 1, c);
      EXPECT_TRUE(r.outcome == Outcome::Vanished ||
                  r.outcome == Outcome::Corrected ||
                  r.outcome == Outcome::Checkstop ||
                  r.outcome == Outcome::Hang ||
                  r.outcome == Outcome::BadArchState)
          << name << " cycle " << c;
    }
  }
}

TEST(MemoryPaths, UncachedPathExercised) {
  // Straddling accesses bypass the D-cache; flips in the miss FSM's pending
  // registers during such an access are detected or timing-only.
  Harness h(R"(
    li r1, 0x4005
    li r2, 40
    mtctr r2
    li r3, -1
  loop:
    std r3, 0(r1)
    ld r4, 0(r1)
    bdnz loop
    stop
  )");
  inject::OutcomeCounts counts;
  for (Cycle c = 30; c < 90; c += 5) {
    const auto r = h.flip("lsu.dcache.miss.addr", 4, c);
    counts.add(r.outcome);
  }
  EXPECT_EQ(counts.of(Outcome::BadArchState), 0u)
      << "uncached path silently corrupted";
}

}  // namespace
}  // namespace sfi
