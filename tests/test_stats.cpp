#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/intervals.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"

namespace sfi::stats {
namespace {

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicPerSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  Xoshiro256 c(8);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const u64 va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 rng(123);
  for (const u64 bound : {u64{1}, u64{2}, u64{7}, u64{350000}, ~u64{0}}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowRejectsZero) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)rng.below(0), InternalError);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRoughlyUniform) {
  Xoshiro256 rng(99);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[rng.below(10)]++;
  for (const int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 10 * 0.15);
  }
}

TEST(Rng, DerivedSeedsDiffer) {
  std::set<u64> seeds;
  for (u64 i = 0; i < 1000; ++i) seeds.insert(derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Descriptive, SummaryBasics) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(Descriptive, StddevOverMean) {
  Summary s;
  s.mean = 0.0;
  EXPECT_EQ(s.stddev_over_mean(), 0.0);
  s.mean = 2.0;
  s.stddev = 1.0;
  EXPECT_DOUBLE_EQ(s.stddev_over_mean(), 0.5);
}

TEST(Descriptive, RunningMatchesBatch) {
  Xoshiro256 rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0;
    xs.push_back(x);
    rs.add(x);
  }
  const Summary a = summarize(xs);
  const Summary b = rs.summary();
  EXPECT_EQ(a.n, b.n);
  EXPECT_NEAR(a.mean, b.mean, 1e-9);
  EXPECT_NEAR(a.stddev, b.stddev, 1e-9);
}

TEST(Descriptive, SingleElement) {
  const std::vector<double> xs = {3.5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.mean, 3.5);
}

TEST(Descriptive, Percentile) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_EQ(percentile(xs, 50), 50.0);
  EXPECT_EQ(percentile(xs, 100), 100.0);
  EXPECT_EQ(percentile(xs, 0), 1.0);
  EXPECT_THROW((void)percentile({}, 50), UsageError);
}

TEST(Intervals, WilsonContainsTruthMostly) {
  // Proportion estimation: the 95% interval should cover the truth.
  Xoshiro256 rng(17);
  const double p = 0.05;
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::size_t hits = 0;
    const std::size_t n = 2000;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(p)) ++hits;
    }
    if (wilson(hits, n).contains(p)) ++covered;
  }
  EXPECT_GT(covered, trials * 0.88);
}

TEST(Intervals, WilsonDegenerateCases) {
  const Interval zero = wilson(0, 100);
  EXPECT_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const Interval all = wilson(100, 100);
  EXPECT_NEAR(all.high, 1.0, 1e-12);
  EXPECT_LT(all.low, 1.0);
}

TEST(Intervals, WilsonNarrowsWithN) {
  EXPECT_GT(wilson(5, 100).width(), wilson(50, 1000).width());
}

TEST(Intervals, ZForConfidenceReferenceValues) {
  // Reference quantiles to a tolerance well inside the Acklam+Halley
  // accuracy (~1e-15 relative).
  EXPECT_NEAR(z_for_confidence(0.90), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(z_for_confidence(0.95), 1.9599639845400545, 1e-9);
  EXPECT_NEAR(z_for_confidence(0.99), 2.5758293035489004, 1e-9);
  EXPECT_NEAR(z_for_confidence(0.999), 3.2905267314919255, 1e-9);
  // The default-z wilson overloads are exactly the 95% quantile — the
  // tables the CLI prints without --confidence are unchanged semantics.
  EXPECT_NEAR(z_for_confidence(kDefaultConfidence), 1.959964, 1e-6);
}

TEST(Intervals, ZForConfidenceMonotonicAndInverse) {
  double prev = 0.0;
  for (double c = 0.05; c < 0.999; c += 0.01) {
    const double z = z_for_confidence(c);
    EXPECT_GT(z, prev);
    prev = z;
    // Round-trip through the normal CDF: P(|Z| <= z) == c.
    const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(2.0 * cdf - 1.0, c, 1e-12);
  }
}

TEST(Intervals, ZForConfidenceRejectsOutOfRange) {
  EXPECT_THROW((void)z_for_confidence(0.0), UsageError);
  EXPECT_THROW((void)z_for_confidence(1.0), UsageError);
  EXPECT_THROW((void)z_for_confidence(-0.5), UsageError);
  EXPECT_THROW((void)z_for_confidence(1.5), UsageError);
}

TEST(Intervals, WilsonRespectsExplicitZ) {
  // A 99% interval is strictly wider than a 95% one on the same counts.
  const Interval z95 = wilson(50, 1000, z_for_confidence(0.95));
  const Interval z99 = wilson(50, 1000, z_for_confidence(0.99));
  EXPECT_GT(z99.width(), z95.width());
  EXPECT_LE(z99.low, z95.low);
  EXPECT_GE(z99.high, z95.high);
}

TEST(Intervals, RequiredSampleSize) {
  const std::size_t n = required_sample_size(0.05, 0.01);
  // Expect in the vicinity of z^2 p(1-p)/w^2 ≈ 1825.
  EXPECT_GT(n, 1000u);
  EXPECT_LT(n, 6000u);
  // Verify the produced n actually achieves the width.
  const auto hits = static_cast<std::size_t>(0.05 * static_cast<double>(n));
  EXPECT_LE(wilson(hits, n).width() / 2.0, 0.0105);
}

TEST(Intervals, RequiredSampleSizeEdgeCases) {
  // p == 0 / p == 1: the sampling-variance term vanishes, but the variance
  // floor plus the exact Wilson verification still yield a finite answer,
  // symmetric across the two degenerate ends.
  EXPECT_EQ(required_sample_size(0.0, 0.01), 204u);
  EXPECT_EQ(required_sample_size(1.0, 0.01), 204u);
  EXPECT_EQ(required_sample_size(0.0, 0.001), 2113u);
  // A Wilson interval is confined to [0,1], so its half-width never exceeds
  // 0.5: any target that loose is met by a single observation.
  EXPECT_EQ(required_sample_size(0.3, 0.5), 1u);
  EXPECT_EQ(required_sample_size(0.5, 0.7), 1u);
  // Invalid inputs reject instead of looping or overflowing.
  EXPECT_THROW((void)required_sample_size(-0.1, 0.01), UsageError);
  EXPECT_THROW((void)required_sample_size(1.1, 0.01), UsageError);
  EXPECT_THROW((void)required_sample_size(0.5, 0.0), UsageError);
  EXPECT_THROW((void)required_sample_size(0.5, -0.01), UsageError);
  EXPECT_THROW((void)required_sample_size(0.5, 0.01, 0.0), UsageError);
  // Absurdly tight targets saturate instead of invoking UB in the
  // float->int cast.
  EXPECT_GT(required_sample_size(0.5, 1e-12), u64{1} << 40);
}

TEST(Intervals, RequiredSampleSizeTableOneScale) {
  // Proportions at the scale of the paper's Table 1, sized for the
  // campaign-report precision of ±1% at 95% confidence: a few thousand
  // flips suffice — the analytical form of the "10k flips" observation.
  EXPECT_EQ(required_sample_size(0.87, 0.01), 4888u);   // Vanished-scale
  EXPECT_EQ(required_sample_size(0.125, 0.01), 4202u);  // Corrected-scale
  EXPECT_EQ(required_sample_size(0.05, 0.01), 2053u);
  // Rare severe outcomes at matching relative precision.
  EXPECT_EQ(required_sample_size(0.005, 0.002), 5375u);
  // Tightening the target never shrinks the requirement.
  EXPECT_GE(required_sample_size(0.1, 0.005),
            required_sample_size(0.1, 0.01));
}

TEST(Sampling, WithoutReplacementBasics) {
  Xoshiro256 rng(11);
  const auto s = sample_without_replacement(1000, 100, rng);
  EXPECT_EQ(s.size(), 100u);
  std::set<u64> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 100u);
  for (const u64 v : s) EXPECT_LT(v, 1000u);
}

TEST(Sampling, WithoutReplacementDense) {
  Xoshiro256 rng(12);
  const auto s = sample_without_replacement(100, 90, rng);
  std::set<u64> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 90u);
}

TEST(Sampling, WithoutReplacementFull) {
  // k == n must yield a permutation of [0, n): every value exactly once.
  Xoshiro256 rng(13);
  const auto s = sample_without_replacement(50, 50, rng);
  std::set<u64> uniq(s.begin(), s.end());
  ASSERT_EQ(uniq.size(), 50u);
  EXPECT_EQ(*uniq.begin(), 0u);
  EXPECT_EQ(*uniq.rbegin(), 49u);
}

TEST(Sampling, WithoutReplacementKZero) {
  // k == 0 is a valid request (an empty campaign stratum), not an error —
  // and it must not consume entropy, so draws after it are unperturbed.
  Xoshiro256 rng(15);
  Xoshiro256 ref(15);
  EXPECT_TRUE(sample_without_replacement(0, 0, rng).empty());
  EXPECT_TRUE(sample_without_replacement(64, 0, rng).empty());
  EXPECT_EQ(rng.next(), ref.next());
}

TEST(Sampling, WithoutReplacementRejectsOversample) {
  Xoshiro256 rng(14);
  EXPECT_THROW((void)sample_without_replacement(10, 11, rng), UsageError);
}

TEST(Sampling, WithoutReplacementUnbiased) {
  // Each element should appear with roughly equal frequency.
  Xoshiro256 rng(15);
  std::array<int, 20> counts{};
  for (int t = 0; t < 4000; ++t) {
    for (const u64 v : sample_without_replacement(20, 5, rng)) counts[v]++;
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Sampling, WeightedIndex) {
  Xoshiro256 rng(16);
  const std::array<double, 3> w = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 10000; ++i) counts[weighted_index(w, rng)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2], 7500, 400);
}

TEST(Sampling, PoissonMeanMatches) {
  Xoshiro256 rng(18);
  for (const double lambda : {0.5, 4.0, 50.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(poisson(lambda, rng));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.05);
  }
}

TEST(Sampling, PoissonZeroLambda) {
  Xoshiro256 rng(19);
  EXPECT_EQ(poisson(0.0, rng), 0u);
}

TEST(Sampling, Shuffle) {
  Xoshiro256 rng(20);
  std::vector<u64> xs(32);
  for (u64 i = 0; i < 32; ++i) xs[i] = i;
  auto copy = xs;
  shuffle(copy, rng);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, xs);
}

}  // namespace
}  // namespace sfi::stats
