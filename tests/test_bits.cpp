#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace sfi {
namespace {

TEST(Bits, MaskLow) {
  EXPECT_EQ(mask_low(0), 0u);
  EXPECT_EQ(mask_low(1), 1u);
  EXPECT_EQ(mask_low(16), 0xFFFFu);
  EXPECT_EQ(mask_low(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(mask_low(64), ~u64{0});
}

TEST(Bits, ExtractInsertRoundTrip) {
  const u64 v = 0xDEADBEEFCAFEF00Dull;
  for (unsigned lsb = 0; lsb < 60; lsb += 7) {
    for (unsigned w = 1; lsb + w <= 64; w += 9) {
      const u64 field = extract(v, lsb, w);
      const u64 back = insert(0, lsb, w, field);
      EXPECT_EQ(extract(back, lsb, w), field);
    }
  }
}

TEST(Bits, InsertPreservesOtherBits) {
  const u64 v = ~u64{0};
  const u64 r = insert(v, 8, 8, 0);
  EXPECT_EQ(r, ~u64{0xFF00});
}

TEST(Bits, ParityBasics) {
  EXPECT_EQ(parity(0), 0u);
  EXPECT_EQ(parity(1), 1u);
  EXPECT_EQ(parity(3), 0u);
  EXPECT_EQ(parity(7), 1u);
  EXPECT_EQ(parity(0xFF, 8), 0u);
  EXPECT_EQ(parity(0xFF, 4), 0u);
  EXPECT_EQ(parity(0xF7, 8), 1u);
}

TEST(Bits, ParitySingleFlipAlwaysDetected) {
  const u64 v = 0x123456789ABCDEF0ull;
  const u32 p = parity(v);
  for (unsigned b = 0; b < 64; ++b) {
    EXPECT_NE(parity(v ^ (u64{1} << b)), p) << "bit " << b;
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x1234, 16), 0x1234);
  EXPECT_EQ(sign_extend(~u64{0}, 64), -1);
}

TEST(Bits, Residue3) {
  EXPECT_EQ(residue3(0), 0u);
  EXPECT_EQ(residue3(1), 1u);
  EXPECT_EQ(residue3(2), 2u);
  EXPECT_EQ(residue3(3), 0u);
  EXPECT_EQ(residue3(~u64{0}), (~u64{0}) % 3);
}

TEST(Bits, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
}

TEST(Bits, ToBinary) {
  EXPECT_EQ(to_binary(5, 4), "0101");
  EXPECT_EQ(to_binary(0, 1), "0");
  EXPECT_EQ(to_binary(~u64{0}, 8), "11111111");
}

TEST(Bits, ToHex) {
  EXPECT_EQ(to_hex(0), "0x0");
  EXPECT_EQ(to_hex(0x1A2B), "0x1a2b");
  EXPECT_EQ(to_hex(~u64{0}), "0xffffffffffffffff");
}

TEST(Bits, ToBinaryRejectsBadWidth) {
  EXPECT_THROW(to_binary(1, 0), UsageError);
  EXPECT_THROW(to_binary(1, 65), UsageError);
}

}  // namespace
}  // namespace sfi
