// Property suite: for ANY generated AVP testcase, the Pearl6 pipeline must
// (a) terminate, (b) report no errors fault-free, and (c) match the ISA
// golden model's architected state and memory image exactly. This is the
// foundation the fault classifier's "BadArchState" verdict rests on.
#include <gtest/gtest.h>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"

namespace sfi {
namespace {

class RandomProgramEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramEquivalence, CoreMatchesGolden) {
  avp::TestcaseConfig cfg;
  cfg.seed = GetParam();
  cfg.num_instructions = 140;
  const avp::Testcase tc = avp::generate_testcase(cfg);

  const avp::GoldenResult golden = avp::run_golden(tc);
  ASSERT_GT(golden.instructions, 0u);

  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  ASSERT_TRUE(trace.completed) << "seed " << cfg.seed;

  const emu::RasStatus ras = model.ras_status(emu.state());
  EXPECT_FALSE(ras.checkstop) << "seed " << cfg.seed;
  EXPECT_FALSE(ras.hang_detected) << "seed " << cfg.seed;
  EXPECT_EQ(ras.recovery_count, 0u) << "seed " << cfg.seed;
  EXPECT_EQ(ras.instructions_completed, golden.instructions)
      << "seed " << cfg.seed;

  const avp::Verdict verdict =
      avp::check_against_golden(model, emu.state(), golden);
  EXPECT_TRUE(verdict.state_matches)
      << "seed " << cfg.seed << ": " << verdict.first_diff;
  EXPECT_TRUE(verdict.memory_matches) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range<u64>(1, 121));

class RandomProgramMixes : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramMixes, GoldenTraceHashesAreReproducible) {
  avp::TestcaseConfig cfg;
  cfg.seed = GetParam() * 977;
  cfg.num_instructions = 90;
  const avp::Testcase tc = avp::generate_testcase(cfg);

  core::Pearl6Model m1;
  emu::Emulator e1(m1);
  const emu::GoldenTrace t1 = avp::run_reference(m1, e1, tc);

  core::Pearl6Model m2;
  emu::Emulator e2(m2);
  const emu::GoldenTrace t2 = avp::run_reference(m2, e2, tc);

  ASSERT_EQ(t1.completion_cycle, t2.completion_cycle);
  ASSERT_EQ(t1.hashes.size(), t2.hashes.size());
  EXPECT_EQ(t1.hashes, t2.hashes);
  EXPECT_EQ(t1.final_state.hash(), t2.final_state.hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramMixes,
                         ::testing::Range<u64>(1, 16));

TEST(RandomProgram, LongTestcaseStillExact) {
  avp::TestcaseConfig cfg;
  cfg.seed = 424242;
  cfg.num_instructions = 600;
  const avp::Testcase tc = avp::generate_testcase(cfg);
  const avp::GoldenResult golden = avp::run_golden(tc);

  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc, 500000);
  ASSERT_TRUE(trace.completed);
  const avp::Verdict verdict =
      avp::check_against_golden(model, emu.state(), golden);
  EXPECT_TRUE(verdict.state_matches) << verdict.first_diff;
  EXPECT_TRUE(verdict.memory_matches);
}

TEST(RandomProgram, RawModeEquivalenceSweep) {
  // With all checkers masked a fault-free run must still be exact.
  core::CoreConfig raw;
  raw.checkers_enabled = false;
  for (u64 seed = 500; seed < 510; ++seed) {
    avp::TestcaseConfig cfg;
    cfg.seed = seed;
    cfg.num_instructions = 100;
    const avp::Testcase tc = avp::generate_testcase(cfg);
    const avp::GoldenResult golden = avp::run_golden(tc);
    core::Pearl6Model model(raw);
    emu::Emulator emu(model);
    const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
    ASSERT_TRUE(trace.completed) << seed;
    const avp::Verdict verdict =
        avp::check_against_golden(model, emu.state(), golden);
    EXPECT_TRUE(verdict.state_matches) << seed << ": " << verdict.first_diff;
  }
}

}  // namespace
}  // namespace sfi
