// Statistical validation of the campaign machinery: the paper's whole
// argument rests on sampled proportions being unbiased and stable. These
// tests check the estimator properties end-to-end on the real model.
#include <gtest/gtest.h>

#include <cmath>

#include "avp/testgen.hpp"
#include "sfi/campaign.hpp"

namespace sfi::inject {
namespace {

avp::Testcase testcase(u64 seed = 61) {
  avp::TestcaseConfig cfg;
  cfg.seed = seed;
  cfg.num_instructions = 90;
  return avp::generate_testcase(cfg);
}

TEST(StatValidation, IndependentSeedsAgreeWithinConfidence) {
  // Two independent campaigns estimate the same underlying proportion; the
  // difference must be compatible with the combined Wilson intervals.
  const avp::Testcase tc = testcase();
  CampaignConfig a;
  a.seed = 100;
  a.num_injections = 700;
  CampaignConfig b = a;
  b.seed = 200;
  const CampaignResult ra = run_campaign(tc, a);
  const CampaignResult rb = run_campaign(tc, b);
  const auto iva = ra.counts().interval(Outcome::Vanished);
  const auto ivb = rb.counts().interval(Outcome::Vanished);
  // 95% intervals of the same quantity overlap (generously: they fail to
  // overlap < 1% of the time; the seeds are fixed, so this is deterministic
  // documentation of agreement, not a flaky assertion).
  EXPECT_LT(std::max(iva.low, ivb.low), std::min(iva.high, ivb.high))
      << "campaigns disagree beyond sampling error";
}

TEST(StatValidation, UnitSliceMatchesTargetedCampaign) {
  // Sampling uniformly and slicing by unit must estimate the same per-unit
  // proportions as a targeted per-unit campaign (same fault process, same
  // classifier): the sampler is unbiased.
  const avp::Testcase tc = testcase();
  CampaignConfig uni;
  uni.seed = 5;
  uni.num_injections = 2500;
  const CampaignResult global = run_campaign(tc, uni);

  CampaignConfig targeted;
  targeted.seed = 6;
  targeted.num_injections = 700;
  targeted.filter = [](const netlist::LatchMeta& m) {
    return m.unit == netlist::Unit::FXU;
  };
  const CampaignResult fxu = run_campaign(tc, targeted);

  const auto& slice =
      global.agg.by_unit[static_cast<std::size_t>(netlist::Unit::FXU)];
  ASSERT_GT(slice.total(), 200u);
  const double p_slice = slice.fraction(Outcome::Vanished);
  const double p_tgt = fxu.counts().fraction(Outcome::Vanished);
  // Combined standard error bound (generous 4σ).
  const double se = std::sqrt(p_tgt * (1 - p_tgt) *
                              (1.0 / static_cast<double>(slice.total()) +
                               1.0 / 700.0));
  EXPECT_NEAR(p_slice, p_tgt, 4.0 * se + 0.01);
}

TEST(StatValidation, UniformSamplerCoversUnitsProportionally) {
  const avp::Testcase tc = testcase();
  CampaignConfig cfg;
  cfg.seed = 9;
  cfg.num_injections = 3000;
  const CampaignResult r = run_campaign(tc, cfg);
  core::Pearl6Model model;
  const auto counts = model.registry().latch_count_by_unit();
  const double total = static_cast<double>(model.registry().num_latches());
  for (const auto u : netlist::kAllUnits) {
    const auto idx = static_cast<std::size_t>(u);
    const double expected =
        static_cast<double>(counts[idx]) / total * 3000.0;
    const double got =
        static_cast<double>(r.agg.by_unit[idx].total());
    // 5σ binomial bound.
    const double sigma = std::sqrt(expected * (1.0 - expected / 3000.0));
    EXPECT_NEAR(got, expected, 5.0 * sigma + 5.0)
        << netlist::to_string(u);
  }
}

TEST(StatValidation, InjectionCyclesUniformOverWindow) {
  const avp::Testcase tc = testcase();
  CampaignConfig cfg;
  cfg.seed = 10;
  cfg.num_injections = 2000;
  const CampaignResult r = run_campaign(tc, cfg);
  // Split the window into quarters: each should hold ~500 injections.
  const Cycle window = r.workload_cycles;
  std::array<u32, 4> quarters{};
  for (const auto& rec : r.records) {
    const auto q = std::min<std::size_t>(
        3, static_cast<std::size_t>(rec.fault.cycle * 4 / window));
    ++quarters[q];
  }
  for (const u32 q : quarters) {
    EXPECT_NEAR(static_cast<double>(q), 500.0, 90.0);
  }
}

TEST(StatValidation, OutcomesStableAcrossWorkloadSeeds) {
  // The paper's derating is a property of the *design*, not one testcase:
  // the vanished fraction across different AVP testcases must agree to
  // within a few points.
  double lo = 1.0;
  double hi = 0.0;
  for (u64 ws : {u64{61}, u64{62}, u64{63}}) {
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.num_injections = 600;
    const CampaignResult r = run_campaign(testcase(ws), cfg);
    const double v = r.counts().fraction(Outcome::Vanished);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(hi - lo, 0.06) << "derating is workload-dominated, not "
                              "design-dominated";
}

}  // namespace
}  // namespace sfi::inject
