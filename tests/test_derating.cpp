#include <gtest/gtest.h>

#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "sfi/campaign.hpp"
#include "sfi/derating.hpp"

namespace sfi::inject {
namespace {

CampaignResult small_campaign() {
  avp::TestcaseConfig tcfg;
  tcfg.seed = 3;
  tcfg.num_instructions = 90;
  CampaignConfig cfg;
  cfg.seed = 11;
  cfg.num_injections = 400;
  return run_campaign(avp::generate_testcase(tcfg), cfg);
}

TEST(Derating, FractionsAreConsistent) {
  const CampaignResult r = small_campaign();
  core::Pearl6Model model;
  const DeratingReport rep = compute_derating(r, model.registry());

  EXPECT_NEAR(rep.overall_derating + rep.severe_fraction, 1.0, 1e-9);
  EXPECT_GE(rep.overall_derating, 0.9);  // the paper's headline property
  EXPECT_LE(rep.sdc_fraction, rep.severe_fraction);
  EXPECT_GE(rep.recovered_fraction, 0.0);
}

TEST(Derating, FitBudgetScalesWithRawRate) {
  const CampaignResult r = small_campaign();
  core::Pearl6Model model;
  DeratingConfig base;
  DeratingConfig scaled;
  scaled.raw_fit_per_latch = base.raw_fit_per_latch * 10.0;
  const DeratingReport a = compute_derating(r, model.registry(), base);
  const DeratingReport b = compute_derating(r, model.registry(), scaled);
  EXPECT_NEAR(b.raw_fit, a.raw_fit * 10.0, 1e-9);
  EXPECT_NEAR(b.sdc_fit, a.sdc_fit * 10.0, 1e-9);
  EXPECT_NEAR(b.unrecoverable_fit, a.unrecoverable_fit * 10.0, 1e-9);
}

TEST(Derating, UnitsSortedBySevereFit) {
  const CampaignResult r = small_campaign();
  core::Pearl6Model model;
  const DeratingReport rep = compute_derating(r, model.registry());
  ASSERT_EQ(rep.by_unit.size(), netlist::kNumUnits);
  for (std::size_t i = 1; i < rep.by_unit.size(); ++i) {
    EXPECT_GE(rep.by_unit[i - 1].severe_fit, rep.by_unit[i].severe_fit);
  }
  u64 latch_sum = 0;
  for (const auto& u : rep.by_unit) latch_sum += u.latch_bits;
  EXPECT_EQ(latch_sum, model.registry().num_latches());
}

TEST(Derating, SummaryMentionsKeyNumbers) {
  const CampaignResult r = small_campaign();
  core::Pearl6Model model;
  const DeratingReport rep = compute_derating(r, model.registry());
  const std::string s = rep.summary();
  EXPECT_NE(s.find("overall derating"), std::string::npos);
  EXPECT_NE(s.find("chip FIT"), std::string::npos);
  EXPECT_NE(s.find("hardening priority"), std::string::npos);
}

TEST(Derating, RejectsEmptyCampaign) {
  CampaignResult empty;
  core::Pearl6Model model;
  EXPECT_THROW((void)compute_derating(empty, model.registry()), UsageError);
}

TEST(Multibit, AdjacentDoubleDefeatsSingleBitParity) {
  // A flip pair inside one GPR data field has even parity: the register-file
  // checker cannot see it. If the register is consumed, the corruption
  // flows — exactly the MBU blind spot bench/ext_multibit quantifies.
  avp::TestcaseConfig tcfg;
  tcfg.seed = 3;
  tcfg.num_instructions = 90;
  const avp::Testcase tc = avp::generate_testcase(tcfg);
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();
  InjectionRunner runner(model, emu, cp, trace, golden, {});

  // A single flip in a hot register is detected...
  const auto ords = model.registry().collect_ordinals(
      [](const netlist::LatchMeta& m) { return m.name == "fxu.gpr2"; });
  ASSERT_EQ(ords.size(), 64u);
  FaultSpec single;
  single.index = ords[5];
  single.cycle = 25;
  OutcomeCounts singles;
  OutcomeCounts doubles;
  for (Cycle c = 20; c < 80; c += 2) {
    single.cycle = c;
    single.adjacent_bits = 1;
    singles.add(runner.run(single).outcome);
    single.adjacent_bits = 2;
    doubles.add(runner.run(single).outcome);
  }
  // ...but the adjacent double never is (same parity domain).
  EXPECT_GT(singles.of(Outcome::Corrected), 0u);
  EXPECT_EQ(doubles.of(Outcome::Corrected), 0u);
}

TEST(Multibit, WidthClampsAtPopulationEnd) {
  avp::TestcaseConfig tcfg;
  tcfg.seed = 3;
  tcfg.num_instructions = 60;
  const avp::Testcase tc = avp::generate_testcase(tcfg);
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();
  InjectionRunner runner(model, emu, cp, trace, golden, {});

  FaultSpec f;
  f.index = model.registry().num_latches() - 1;  // last ordinal
  f.cycle = 10;
  f.adjacent_bits = 4;  // clamped: must not throw
  EXPECT_NO_THROW((void)runner.run(f));
}

}  // namespace
}  // namespace sfi::inject
