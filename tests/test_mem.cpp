#include <gtest/gtest.h>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "mem/ecc_memory.hpp"
#include "sfi/runner.hpp"

namespace sfi::mem {
namespace {

TEST(EccMemory, CleanRoundTrip) {
  EccMemory m(4096);
  m.store(0x100, 0xDEADBEEFCAFEF00Dull, 8);
  EXPECT_EQ(m.load(0x100, 8), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(m.take_corrected(), 0u);
  EXPECT_FALSE(m.take_fatal());
}

TEST(EccMemory, SubWordStoresKeepCheckBitsConsistent) {
  EccMemory m(4096);
  m.store(0x200, 0x1122334455667788ull, 8);
  m.store(0x203, 0xAB, 1);
  m.store(0x204, 0xCDEF, 4);
  EXPECT_EQ(m.load(0x200, 8) & 0xFFull, 0x88u);
  EXPECT_EQ((m.load(0x200, 8) >> 24) & 0xFFull, 0xABu);
  EXPECT_EQ(m.take_corrected(), 0u);
}

TEST(EccMemory, StraddlingAccess) {
  EccMemory m(4096);
  m.store(0x305, 0x0123456789ABCDEFull, 8);  // crosses a word boundary
  EXPECT_EQ(m.load(0x305, 8), 0x0123456789ABCDEFull);
  EXPECT_EQ(m.take_corrected(), 0u);
}

TEST(EccMemory, SingleBitFlipCorrectedOnAccess) {
  EccMemory m(4096);
  m.store(0x400, 0x5555, 8);
  (void)m.take_corrected();
  m.flip_storage_bit((0x400 / 8) * 72 + 3);  // data bit 3 of that word
  EXPECT_EQ(m.load(0x400, 8), 0x5555u ^ 0x8u ^ 0x8u);  // corrected value
  EXPECT_EQ(m.load(0x400, 8), 0x5555u);
  EXPECT_EQ(m.take_corrected(), 1u);  // exactly one correction (writeback)
  EXPECT_FALSE(m.take_fatal());
}

TEST(EccMemory, CheckBitFlipCorrected) {
  EccMemory m(4096);
  m.store(0x408, 99, 8);
  (void)m.take_corrected();
  m.flip_storage_bit((0x408 / 8) * 72 + 64 + 2);  // check bit 2
  EXPECT_EQ(m.load(0x408, 8), 99u);
  EXPECT_EQ(m.take_corrected(), 1u);
}

TEST(EccMemory, DoubleBitFlipIsFatal) {
  EccMemory m(4096);
  m.store(0x500, ~u64{0}, 8);
  m.flip_storage_bit((0x500 / 8) * 72 + 1);
  m.flip_storage_bit((0x500 / 8) * 72 + 40);
  (void)m.load(0x500, 8);
  EXPECT_TRUE(m.take_fatal());
}

TEST(EccMemory, ScrubFindsLatentFlip) {
  EccMemory m(1024);  // 128 words: a full patrol takes 128*16 cycles
  m.flip_storage_bit(5 * 72 + 7);
  for (u32 c = 0; c < 128 * EccMemory::kScrubInterval + 1; ++c) {
    m.scrub_step();
  }
  EXPECT_EQ(m.take_corrected(), 1u);
  EXPECT_EQ(m.load(5 * 8, 8), 0u);
  EXPECT_EQ(m.take_corrected(), 0u);  // already healed by the scrub
}

TEST(EccMemory, CorrectedHashMatchesHealedContent) {
  EccMemory a(1024);
  EccMemory b(1024);
  a.store(64, 7, 8);
  b.store(64, 7, 8);
  b.flip_storage_bit((64 / 8) * 72 + 9);  // latent flip in b
  EXPECT_EQ(a.corrected_hash(0, 1024), b.corrected_hash(0, 1024));
  EXPECT_GE(b.take_corrected(), 1u);
}

TEST(EccMemory, SnapshotRoundTrip) {
  EccMemory a(1024);
  a.store(8, 42, 8);
  a.flip_storage_bit(3);
  for (int i = 0; i < 37; ++i) a.scrub_step();
  std::vector<u8> blob;
  a.save(blob);

  EccMemory b(1024);
  std::span<const u8> in(blob);
  b.load_snapshot(in);
  EXPECT_TRUE(in.empty());
  // Identical subsequent behaviour (same scrub position, same latent flip).
  for (int i = 0; i < 2000; ++i) {
    a.scrub_step();
    b.scrub_step();
  }
  EXPECT_EQ(a.take_corrected(), b.take_corrected());
  EXPECT_EQ(a.corrected_hash(0, 1024), b.corrected_hash(0, 1024));
}

TEST(EccMemory, WriteBlockEncodesEverything) {
  EccMemory m(1024);
  std::vector<u8> img(200);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<u8>(i);
  m.write_block(100, img);
  for (u32 i = 0; i < 200; ++i) {
    EXPECT_EQ(m.load(100 + i, 1), i & 0xFF);
  }
  EXPECT_EQ(m.take_corrected(), 0u);
  EXPECT_FALSE(m.take_fatal());
}

// ---- periphery injection through the full machine ----

struct PeripheryHarness {
  avp::Testcase tc;
  avp::GoldenResult golden;
  core::Pearl6Model model;
  std::unique_ptr<emu::Emulator> emu;
  emu::Checkpoint cp;
  emu::GoldenTrace trace;
  std::unique_ptr<inject::InjectionRunner> runner;

  explicit PeripheryHarness(std::string_view src = {}) {
    if (src.empty()) {
      avp::TestcaseConfig cfg;
      cfg.seed = 77;
      cfg.num_instructions = 100;
      tc = avp::generate_testcase(cfg);
    } else {
      tc.program.code = isa::assemble(src);
    }
    golden = avp::run_golden(tc);
    emu = std::make_unique<emu::Emulator>(model);
    trace = avp::run_reference(model, *emu, tc);
    emu->reset();
    cp = emu->save_checkpoint();
    inject::RunConfig rc;
    rc.early_exit = false;  // DRAM state is not hashed
    runner = std::make_unique<inject::InjectionRunner>(model, *emu, cp, trace,
                                                       golden, rc);
  }
};

TEST(Periphery, MainStoreSingleBitNeverCorrupts) {
  PeripheryHarness h;
  // Strike words in the testcase data region (0x8000..): any outcome must
  // be Vanished or Corrected — never SDC (that is what the ECC buys).
  for (u64 i = 0; i < 12; ++i) {
    inject::FaultSpec f;
    f.cycle = 10 + i * 7;
    f.target = inject::FaultTarget::Latch;  // placeholder; flip manually
    // Restore, run, flip DRAM directly, continue via runner's own flow:
    // easiest is to use the ArrayCell pathway? DRAM is not in the array
    // registry, so drive the flip with a custom pre-run mutation.
    h.emu->restore_checkpoint(h.cp);
    h.emu->run(f.cycle);
    h.model.memory().flip_storage_bit(((0x8000 / 8) + i * 37) * 72 +
                                      (i * 11) % 72);
    // Run to completion manually and classify.
    while (true) {
      h.emu->step();
      const auto ras = h.model.ras_status(h.emu->state());
      ASSERT_FALSE(ras.checkstop);
      if (ras.test_finished) break;
      ASSERT_LT(h.emu->cycle(), h.trace.completion_cycle + 4000);
    }
    const auto verdict =
        avp::check_against_golden(h.model, h.emu->state(), h.golden);
    EXPECT_TRUE(verdict.state_matches) << verdict.first_diff;
    EXPECT_TRUE(verdict.memory_matches) << "strike " << i;
  }
}

TEST(Periphery, MainStoreDoubleBitChecksto) {
  // The loop's store invalidates its own cache line, so every iteration
  // refetches 0x4000 from main store through the ECC controller.
  PeripheryHarness h(R"(
    li r1, 0x4000
    li r2, 200
    mtctr r2
  loop:
    lwz r3, 0(r1)
    stw r3, 4(r1)
    bdnz loop
    stop
  )");
  h.emu->restore_checkpoint(h.cp);
  h.emu->run(30);
  const u64 w = 0x4000 / 8;
  h.model.memory().flip_storage_bit(w * 72 + 2);
  h.model.memory().flip_storage_bit(w * 72 + 33);
  bool checkstopped = false;
  for (Cycle c = 0; c < 100000; ++c) {
    h.emu->step();
    const auto ras = h.model.ras_status(h.emu->state());
    if (ras.checkstop) {
      checkstopped = true;
      break;
    }
    if (ras.test_finished) break;
  }
  EXPECT_TRUE(checkstopped)
      << "uncorrectable main-store word was never reported";
}

}  // namespace
}  // namespace sfi::mem
