// Interval checkpointing of the reference run (src/emu/checkpoint_store.*):
// delta codec round-trips, warm-start state equality against straight-line
// replay, and the headline guarantee — a checkpointed, cycle-sorted campaign
// produces records (and canonical store bytes) identical to the cycle-0
// replay path at every interval and thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "beam/beam.hpp"
#include "core/core_model.hpp"
#include "emu/checkpoint_store.hpp"
#include "emu/emulator.hpp"
#include "sched/scheduler.hpp"
#include "sfi/campaign.hpp"
#include "store/merge.hpp"

namespace sfi {
namespace {

avp::Testcase small_testcase() {
  avp::TestcaseConfig cfg;
  cfg.seed = 77;
  cfg.num_instructions = 60;
  return avp::generate_testcase(cfg);
}

/// Replay the testcase fault-free and collect a raw (uncompressed)
/// checkpoint at every cycle in `cycles`.
std::vector<emu::Checkpoint> raw_checkpoints(const avp::Testcase& tc,
                                             const std::vector<Cycle>& cycles) {
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  emu.reset();
  std::vector<emu::Checkpoint> out;
  Cycle at = 0;
  for (const Cycle c : cycles) {
    emu.run(c - at);
    at = c;
    out.push_back(emu.save_checkpoint());
  }
  return out;
}

bool same_checkpoint(const emu::Checkpoint& a, const emu::Checkpoint& b) {
  return a.cycle == b.cycle && a.latches == b.latches && a.aux == b.aux;
}

bool same_record(const inject::InjectionRecord& a,
                 const inject::InjectionRecord& b) {
  return a.fault.target == b.fault.target && a.fault.index == b.fault.index &&
         a.fault.array_bit == b.fault.array_bit &&
         a.fault.cycle == b.fault.cycle && a.fault.mode == b.fault.mode &&
         a.outcome == b.outcome && a.unit == b.unit && a.type == b.type &&
         a.end_cycle == b.end_cycle && a.early_exited == b.early_exited &&
         a.recoveries == b.recoveries;
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sfi_ckpt_test_" + name + ".sfr"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// --- delta codec ---------------------------------------------------------

TEST(CheckpointStore, MaterializeRoundTripsEveryRecord) {
  const avp::Testcase tc = small_testcase();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);

  emu::CheckpointStoreConfig cfg;
  cfg.interval = 7;
  const emu::CheckpointStore store = emu::build_checkpoint_store(
      emu, trace.completion_cycle - 1, cfg, &trace);
  ASSERT_GT(store.size(), 4u);
  EXPECT_EQ(store.interval(), 7u);
  EXPECT_EQ(store.dropped(), 0u);

  std::vector<Cycle> cycles;
  cycles.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    cycles.push_back(store.cycle_at(i));
  }
  const std::vector<emu::Checkpoint> raw = raw_checkpoints(tc, cycles);

  emu::Checkpoint got;
  for (std::size_t i = 0; i < store.size(); ++i) {
    store.materialize(i, got);
    EXPECT_TRUE(same_checkpoint(got, raw[i])) << "checkpoint " << i;
  }
  // Repeat materialization into the same storage (the runner's cache path)
  // must restore in place, not accumulate.
  store.materialize(0, got);
  EXPECT_TRUE(same_checkpoint(got, raw[0]));

  // Delta compression must actually compress: encoded bytes well under
  // size() full snapshots.
  EXPECT_LT(store.resident_bytes(),
            store.size() * raw[0].size_bytes() / 2);
}

TEST(CheckpointStore, IndexAtOrBeforeEdges) {
  const avp::Testcase tc = small_testcase();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);

  emu::CheckpointStoreConfig cfg;
  cfg.interval = 10;
  const emu::CheckpointStore store = emu::build_checkpoint_store(
      emu, trace.completion_cycle - 1, cfg, &trace);
  ASSERT_FALSE(store.empty());

  // Before the first snapshot: nothing to warm-start from.
  EXPECT_FALSE(store.index_at_or_before(0).has_value());
  EXPECT_FALSE(store.index_at_or_before(store.cycle_at(0) - 1).has_value());
  // Exactly at a snapshot.
  const auto at0 = store.index_at_or_before(store.cycle_at(0));
  ASSERT_TRUE(at0.has_value());
  EXPECT_EQ(*at0, 0u);
  // Between two snapshots: the earlier one.
  const auto mid = store.index_at_or_before(store.cycle_at(1) - 1);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(*mid, 0u);
  // Far past the end: the last one.
  const auto last = store.index_at_or_before(1u << 30);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(*last, store.size() - 1);
}

TEST(CheckpointStore, WarmStartEqualsReplayAtArbitraryCycles) {
  const avp::Testcase tc = small_testcase();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  const auto& masks = model.registry().hash_masks();

  emu::CheckpointStoreConfig cfg;
  cfg.interval = 9;
  const emu::CheckpointStore store = emu::build_checkpoint_store(
      emu, trace.completion_cycle - 1, cfg, &trace);

  core::Pearl6Model warm_model;
  warm_model.load_workload(tc.program, tc.init);
  emu::Emulator warm(warm_model);

  emu::Checkpoint cp;
  for (const Cycle target : {Cycle{13}, Cycle{27}, Cycle{40},
                             trace.completion_cycle - 2}) {
    // Straight-line replay from reset.
    emu.reset();
    emu.run(target);
    // Warm start: nearest checkpoint, then fast-forward.
    const auto idx = store.index_at_or_before(target);
    ASSERT_TRUE(idx.has_value()) << "cycle " << target;
    store.materialize(*idx, cp);
    warm.restore_checkpoint(cp);
    warm.run(target - cp.cycle);

    EXPECT_EQ(warm.cycle(), emu.cycle());
    // Full state equality, not just the functional hash …
    EXPECT_TRUE(warm.state() == emu.state()) << "cycle " << target;
    // … but the registry hash must agree with the recorded trace too.
    ASSERT_TRUE(trace.has_cycle(target - 1));
    EXPECT_EQ(warm.state().masked_hash(masks), trace.hashes[target - 1]);
  }
}

TEST(CheckpointStore, MemoryBudgetBoundsResidentBytes) {
  const avp::Testcase tc = small_testcase();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);

  emu::CheckpointStoreConfig cfg;
  cfg.interval = 2;
  cfg.memory_budget_bytes = 200 * 1024;  // a couple of full snapshots
  const emu::CheckpointStore store = emu::build_checkpoint_store(
      emu, trace.completion_cycle - 1, cfg, &trace);

  EXPECT_LE(store.resident_bytes(), cfg.memory_budget_bytes);
  EXPECT_GT(store.dropped(), 0u);
  // Whatever survived must still reconstruct correctly.
  ASSERT_FALSE(store.empty());
  std::vector<Cycle> cycles;
  for (std::size_t i = 0; i < store.size(); ++i) {
    cycles.push_back(store.cycle_at(i));
  }
  const std::vector<emu::Checkpoint> raw = raw_checkpoints(tc, cycles);
  emu::Checkpoint got;
  for (std::size_t i = 0; i < store.size(); ++i) {
    store.materialize(i, got);
    EXPECT_TRUE(same_checkpoint(got, raw[i])) << "checkpoint " << i;
  }
}

TEST(CheckpointStore, AutoIntervalRespectsBudgetAndWindow) {
  // Small budget → few checkpoints → large interval.
  EXPECT_EQ(emu::auto_checkpoint_interval(1000, 1000, 2000), 500u);
  // Huge budget → clamped checkpoint count.
  EXPECT_GE(emu::auto_checkpoint_interval(1 << 20, 64, 1ull << 40), 256u);
  // Tiny window → interval at least 1.
  EXPECT_GE(emu::auto_checkpoint_interval(1, 1000, 1ull << 30), 1u);
}

// --- emulator restore-in-place -------------------------------------------

TEST(CheckpointStore, EmulatorRestoreInPlaceAndSizeReport) {
  const avp::Testcase tc = small_testcase();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  emu.reset();
  emu.run(25);
  const emu::Checkpoint cp = emu.save_checkpoint();
  EXPECT_EQ(cp.size_bytes(),
            cp.latches.words().size() * sizeof(u64) + cp.aux.size());
  EXPECT_GT(cp.size_bytes(), 0u);

  emu.run(10);
  const u64 ffwd_before = emu.cycles_fast_forwarded();
  emu.restore_checkpoint(cp);
  EXPECT_EQ(emu.cycle(), 25u);
  EXPECT_TRUE(emu.state() == cp.latches);
  EXPECT_EQ(emu.cycles_fast_forwarded(), ffwd_before + 25);

  // A checkpoint from a different machine shape must be refused.
  emu::Checkpoint bad = cp;
  bad.latches = netlist::StateVector(8);
  EXPECT_THROW(emu.restore_checkpoint(bad), std::exception);
}

// --- campaign equivalence ------------------------------------------------

TEST(CheckpointStore, CampaignRecordsIdenticalAcrossIntervalsAndThreads) {
  const avp::Testcase tc = small_testcase();
  inject::CampaignConfig base;
  base.seed = 321;
  base.num_injections = 150;
  base.threads = 1;
  base.ckpt_interval = 0;  // seed path: every run replays from cycle 0

  const inject::CampaignResult ref = inject::run_campaign(tc, base);
  ASSERT_EQ(ref.records.size(), base.num_injections);
  EXPECT_EQ(ref.cycles_fast_forwarded, 0u);
  EXPECT_EQ(ref.checkpoints, 0u);

  for (const Cycle interval : {Cycle{1}, Cycle{13}, emu::kCkptAuto}) {
    for (const u32 threads : {1u, 3u}) {
      inject::CampaignConfig cfg = base;
      cfg.ckpt_interval = interval;
      cfg.threads = threads;
      const inject::CampaignResult got = inject::run_campaign(tc, cfg);
      ASSERT_EQ(got.records.size(), ref.records.size());
      for (std::size_t i = 0; i < ref.records.size(); ++i) {
        EXPECT_TRUE(same_record(got.records[i], ref.records[i]))
            << "interval " << interval << " threads " << threads
            << " record " << i;
      }
      EXPECT_GT(got.cycles_fast_forwarded, 0u);
      EXPECT_GT(got.checkpoints, 0u);
      EXPECT_LT(got.cycles_evaluated, ref.cycles_evaluated);
    }
  }
}

// --- scheduler / store equivalence ---------------------------------------

TEST(CheckpointStore, ScheduledStoreByteIdenticalToSeedPath) {
  const avp::Testcase tc = small_testcase();
  inject::CampaignConfig cfg;
  cfg.seed = 99;
  cfg.num_injections = 120;
  cfg.threads = 2;

  TempFile off("sched_ckpt_off");
  TempFile on("sched_ckpt_on");
  TempFile off_m("sched_ckpt_off_merged");
  TempFile on_m("sched_ckpt_on_merged");

  inject::CampaignConfig cfg_off = cfg;
  cfg_off.ckpt_interval = 0;
  const auto r_off =
      sched::run_campaign_to_store(tc, cfg_off, off.path());
  inject::CampaignConfig cfg_on = cfg;
  cfg_on.ckpt_interval = emu::kCkptAuto;
  const auto r_on = sched::run_campaign_to_store(tc, cfg_on, on.path());

  ASSERT_TRUE(r_off.complete);
  ASSERT_TRUE(r_on.complete);
  EXPECT_EQ(r_off.meta.config_fingerprint, r_on.meta.config_fingerprint)
      << "checkpoint knobs must not enter the campaign fingerprint";
  EXPECT_GT(r_on.cycles_fast_forwarded, 0u);
  EXPECT_GT(r_on.checkpoints, 0u);
  EXPECT_GT(r_on.checkpoint_bytes, 0u);

  // Canonical merges byte-identical: the store carries by-index records, so
  // the dispatch order (cycle-sorted vs index-sharded) must not matter.
  store::merge_stores({off.path()}, off_m.path());
  store::merge_stores({on.path()}, on_m.path());
  EXPECT_EQ(file_bytes(off_m.path()), file_bytes(on_m.path()));
}

TEST(CheckpointStore, InterruptedResumeWithCheckpointsStaysByteIdentical) {
  const avp::Testcase tc = small_testcase();
  inject::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = 90;
  cfg.threads = 2;
  cfg.ckpt_interval = emu::kCkptAuto;

  TempFile full("resume_full");
  TempFile split("resume_split");
  TempFile full_m("resume_full_merged");
  TempFile split_m("resume_split_merged");

  const auto r_full = sched::run_campaign_to_store(tc, cfg, full.path());
  ASSERT_TRUE(r_full.complete);

  sched::SchedulerConfig interrupt;
  interrupt.max_new_injections = 40;
  const auto r_part =
      sched::run_campaign_to_store(tc, cfg, split.path(), interrupt);
  EXPECT_FALSE(r_part.complete);
  // Resume with a different interval: warm-start tuning must never leak
  // into results or campaign identity.
  inject::CampaignConfig cfg2 = cfg;
  cfg2.ckpt_interval = 5;
  const auto r_rest = sched::run_campaign_to_store(tc, cfg2, split.path(),
                                                   {}, /*resume=*/true);
  ASSERT_TRUE(r_rest.complete);
  EXPECT_EQ(r_rest.resumed, 40u);

  store::merge_stores({full.path()}, full_m.path());
  store::merge_stores({split.path()}, split_m.path());
  EXPECT_EQ(file_bytes(full_m.path()), file_bytes(split_m.path()));
}

// --- beam ----------------------------------------------------------------

TEST(CheckpointStore, BeamOutcomesUnchangedByCheckpointing) {
  const avp::Testcase tc = small_testcase();
  beam::BeamConfig cfg;
  cfg.seed = 11;
  cfg.num_events = 80;
  cfg.threads = 2;

  beam::BeamConfig off = cfg;
  off.ckpt_interval = 0;
  const beam::BeamResult r_off = beam::run_beam_experiment(tc, off);
  beam::BeamConfig on = cfg;
  on.ckpt_interval = emu::kCkptAuto;
  const beam::BeamResult r_on = beam::run_beam_experiment(tc, on);

  ASSERT_EQ(r_off.records.size(), r_on.records.size());
  for (std::size_t i = 0; i < r_off.records.size(); ++i) {
    EXPECT_TRUE(same_record(r_off.records[i], r_on.records[i]))
        << "beam record " << i;
  }
  EXPECT_EQ(r_off.latch_events, r_on.latch_events);
}

}  // namespace
}  // namespace sfi
