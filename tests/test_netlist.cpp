#include <gtest/gtest.h>

#include "netlist/field.hpp"
#include "netlist/registry.hpp"
#include "netlist/state_vector.hpp"

namespace sfi::netlist {
namespace {

LatchRegistry make_reg() {
  LatchRegistry reg;
  reg.add("a.x", Unit::IFU, LatchType::Func, 0, 16);
  reg.add("a.y", Unit::IFU, LatchType::Func, 0, 1);
  reg.add("b.gpr0", Unit::FXU, LatchType::RegFile, 2, 64);
  reg.add("b.mode", Unit::FXU, LatchType::Mode, 2, 8, /*hashable=*/false);
  reg.add("b.mode_wedge", Unit::FXU, LatchType::Mode, 2, 1);  // hashable
  reg.add("c.gptr", Unit::Core, LatchType::Gptr, 6, 4, /*hashable=*/false);
  reg.finalize();
  return reg;
}

TEST(Registry, OrdinalCountsExcludePadding) {
  const LatchRegistry reg = make_reg();
  EXPECT_EQ(reg.num_latches(), 16u + 1 + 64 + 8 + 1 + 4);
  // 16+1 fit in word 0; 64 needs its own word → padding inserted.
  EXPECT_GT(reg.total_bits(), reg.num_latches());
}

TEST(Registry, FieldsNeverStraddleWords) {
  const LatchRegistry reg = make_reg();
  for (const LatchMeta& m : reg.fields()) {
    EXPECT_EQ(m.bit_offset / 64, (m.bit_offset + m.width - 1) / 64) << m.name;
  }
}

TEST(Registry, OrdinalToBitRoundTrip) {
  const LatchRegistry reg = make_reg();
  for (u32 ord = 0; ord < reg.num_latches(); ++ord) {
    const LatchMeta& m = reg.meta_of_ordinal(ord);
    const BitIndex bit = reg.bit_of_ordinal(ord);
    EXPECT_GE(bit, m.bit_offset);
    EXPECT_LT(bit, m.bit_offset + m.width);
  }
}

TEST(Registry, MetaLookup) {
  const LatchRegistry reg = make_reg();
  EXPECT_EQ(reg.meta_of_ordinal(0).name, "a.x");
  EXPECT_EQ(reg.meta_of_ordinal(16).name, "a.y");
  EXPECT_EQ(reg.meta_of_ordinal(17).name, "b.gpr0");
  EXPECT_EQ(reg.name_of_ordinal(5), "a.x[5]");
  EXPECT_EQ(reg.name_of_ordinal(16), "a.y");
}

TEST(Registry, CountsByUnitAndType) {
  const LatchRegistry reg = make_reg();
  const auto by_unit = reg.latch_count_by_unit();
  EXPECT_EQ(by_unit[static_cast<std::size_t>(Unit::IFU)], 17u);
  EXPECT_EQ(by_unit[static_cast<std::size_t>(Unit::FXU)], 73u);
  EXPECT_EQ(by_unit[static_cast<std::size_t>(Unit::Core)], 4u);
  const auto by_type = reg.latch_count_by_type();
  EXPECT_EQ(by_type[static_cast<std::size_t>(LatchType::Mode)], 9u);
  EXPECT_EQ(by_type[static_cast<std::size_t>(LatchType::Gptr)], 4u);
  EXPECT_EQ(by_type[static_cast<std::size_t>(LatchType::RegFile)], 64u);
}

TEST(Registry, CollectOrdinals) {
  const LatchRegistry reg = make_reg();
  const auto scan_only = reg.collect_ordinals(
      [](const LatchMeta& m) { return is_scan_only(m.type); });
  EXPECT_EQ(scan_only.size(), 13u);
}

TEST(Registry, HashableFlagIsAuthoritative) {
  const LatchRegistry reg = make_reg();
  StateVector sv(reg.total_bits());
  const u64 h0 = sv.masked_hash(reg.hash_masks());
  // Flip a benign (hashable=false) MODE bit: hash unchanged.
  const auto benign = reg.collect_ordinals(
      [](const LatchMeta& m) { return m.name == "b.mode"; });
  sv.flip_bit(reg.bit_of_ordinal(benign.front()));
  EXPECT_EQ(sv.masked_hash(reg.hash_masks()), h0);
  // Flip the hashable MODE wedge bit: hash changes (no false convergence).
  const auto wedge = reg.collect_ordinals(
      [](const LatchMeta& m) { return m.name == "b.mode_wedge"; });
  sv.flip_bit(reg.bit_of_ordinal(wedge.front()));
  EXPECT_NE(sv.masked_hash(reg.hash_masks()), h0);
  // Flip a FUNC bit: hash changes again.
  const u64 h1 = sv.masked_hash(reg.hash_masks());
  sv.flip_bit(reg.bit_of_ordinal(0));
  EXPECT_NE(sv.masked_hash(reg.hash_masks()), h1);
}

TEST(Registry, AddAfterFinalizeRejected) {
  LatchRegistry reg = make_reg();
  EXPECT_THROW(reg.add("late", Unit::IFU, LatchType::Func, 0, 1), UsageError);
}

TEST(Registry, BadWidthRejected) {
  LatchRegistry reg;
  EXPECT_THROW(reg.add("w0", Unit::IFU, LatchType::Func, 0, 0), UsageError);
  EXPECT_THROW(reg.add("w65", Unit::IFU, LatchType::Func, 0, 65), UsageError);
}

TEST(StateVector, BitOps) {
  StateVector sv(130);
  EXPECT_FALSE(sv.get_bit(129));
  sv.set_bit(129, true);
  EXPECT_TRUE(sv.get_bit(129));
  sv.flip_bit(129);
  EXPECT_FALSE(sv.get_bit(129));
  EXPECT_THROW(sv.set_bit(130, true), UsageError);
}

TEST(StateVector, FieldReadWrite) {
  StateVector sv(128);
  sv.write(3, 16, 0xABCD);
  EXPECT_EQ(sv.read(3, 16), 0xABCDu);
  sv.write(64, 64, ~u64{0});
  EXPECT_EQ(sv.read(64, 64), ~u64{0});
  // Neighbouring fields unaffected.
  EXPECT_EQ(sv.read(19, 16), 0u);
}

TEST(StateVector, EqualityAndDistance) {
  const LatchRegistry reg = make_reg();
  StateVector a(reg.total_bits());
  StateVector b(reg.total_bits());
  EXPECT_EQ(a, b);
  b.flip_bit(reg.bit_of_ordinal(3));
  b.flip_bit(reg.bit_of_ordinal(20));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.masked_distance(b, reg.hash_masks()), 2u);
}

TEST(Field, LatchSemantics) {
  LatchRegistry reg;
  const Field x(reg.add("x", Unit::IFU, LatchType::Func, 0, 8));
  const Field y(reg.add("y", Unit::IFU, LatchType::Func, 0, 8));
  reg.finalize();
  StateVector cur(reg.total_bits());
  StateVector nxt(reg.total_bits());
  x.poke(cur, 5);
  nxt = cur;
  const CycleFrame f{cur, nxt};
  EXPECT_EQ(x.get(f), 5u);
  x.set(f, 9);
  EXPECT_EQ(x.get(f), 5u);     // current value unchanged
  EXPECT_EQ(x.staged(f), 9u);  // staged for next cycle
  EXPECT_EQ(y.staged(f), 0u);  // unwritten fields hold
}

TEST(Field, FlagWidthEnforced) {
  LatchRegistry reg;
  const auto wide = reg.add("wide", Unit::IFU, LatchType::Func, 0, 2);
  EXPECT_THROW(netlist::Flag{wide}, UsageError);
}

}  // namespace
}  // namespace sfi::netlist
