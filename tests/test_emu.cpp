#include <gtest/gtest.h>

#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "report/table.hpp"

namespace sfi::emu {
namespace {

core::Pearl6Model& loop_model() {
  static core::Pearl6Model* model = [] {
    auto* m = new core::Pearl6Model;  // intentionally leaked test fixture
    isa::Program p;
    p.code = isa::assemble(R"(
      li r1, 50
      mtctr r1
    loop:
      addi r2, r2, 1
      bdnz loop
      stop
    )");
    m->load_workload(p, {});
    return m;
  }();
  return *model;
}

TEST(Emulator, HostLinkAccounting) {
  Emulator emu(loop_model());
  emu.reset();
  const u64 reads0 = emu.hostlink().status_reads;
  (void)emu.ras();
  (void)emu.ras();
  EXPECT_EQ(emu.hostlink().status_reads, reads0 + 2);
  emu.flip_latch(3);
  EXPECT_EQ(emu.hostlink().injections, 1u);
  (void)emu.save_checkpoint();
  EXPECT_EQ(emu.hostlink().checkpoint_ops, 1u);
}

TEST(Emulator, RunPolledIntervalCountsInteractions) {
  Emulator emu(loop_model());
  emu.reset();
  const u64 reads0 = emu.hostlink().status_reads;
  u32 polls = 0;
  emu.run_polled(100, 10, [&](const Emulator&) {
    ++polls;
    return false;
  });
  EXPECT_EQ(polls, 10u);
  EXPECT_EQ(emu.hostlink().status_reads, reads0 + 10);
  EXPECT_EQ(emu.cycle(), 100u);
}

TEST(Emulator, RunPolledStopsEarly) {
  Emulator emu(loop_model());
  emu.reset();
  emu.run_polled(1000, 16, [](const Emulator& e) {
    return e.model().ras_status(e.state()).test_finished;
  });
  EXPECT_TRUE(emu.model().ras_status(emu.state()).test_finished);
  EXPECT_LT(emu.cycle(), 1000u);
  EXPECT_EQ(emu.cycle() % 16, 0u);  // stopped on a poll boundary
}

TEST(Emulator, StickyForceHoldsValue) {
  Emulator emu(loop_model());
  emu.reset();
  emu.run(5);
  // Force a spare-chain bit (no functional effect) and watch it hold.
  const auto ords = loop_model().registry().collect_ordinals(
      [](const netlist::LatchMeta& m) { return m.name == "core.dbg0"; });
  ASSERT_FALSE(ords.empty());
  const BitIndex bit = loop_model().registry().bit_of_ordinal(ords[0]);
  emu.force_latch(bit, true, 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(emu.state().get_bit(bit)) << i;
    emu.step();
  }
  // Released: the latch holds its (never functionally written) value but is
  // no longer forced — clear it manually and confirm it stays cleared.
  emu.clear_forces();
  EXPECT_TRUE(emu.state().get_bit(bit));
}

TEST(Emulator, CheckpointRestoresCycleAndAux) {
  Emulator emu(loop_model());
  emu.reset();
  emu.run(20);
  const Checkpoint cp = emu.save_checkpoint();
  emu.run(50);
  emu.restore_checkpoint(cp);
  EXPECT_EQ(emu.cycle(), 20u);
  // Re-running from the checkpoint reproduces the same final state.
  emu.run(50);
  const u64 h1 = emu.state().masked_hash(
      loop_model().registry().hash_masks());
  emu.restore_checkpoint(cp);
  emu.run(50);
  EXPECT_EQ(emu.state().masked_hash(loop_model().registry().hash_masks()),
            h1);
}

TEST(Report, TableFormatsAligned) {
  report::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"long-name-here", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("long-name-here"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), UsageError);
}

TEST(Report, Formatters) {
  EXPECT_EQ(report::Table::pct(0.12345), "12.35%");
  EXPECT_EQ(report::Table::pct(1.0, 1), "100.0%");
  EXPECT_EQ(report::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(report::Table::count(42), "42");
  EXPECT_EQ(report::section("X"), "\n=== X ===\n");
}

}  // namespace
}  // namespace sfi::emu
