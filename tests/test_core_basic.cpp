// Pipeline correctness: Pearl6 must architecturally match the ISA golden
// model on fault-free runs — the bedrock property fault classification
// stands on.
#include <gtest/gtest.h>

#include <bit>

#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "emu/golden_trace.hpp"
#include "isa/assembler.hpp"
#include "isa/golden.hpp"

namespace sfi::core {
namespace {

using isa::ArchState;
using isa::Program;

struct RunResult {
  ArchState core_state;
  ArchState golden_state;
  Cycle cycles = 0;
  u64 instructions = 0;
  bool finished = false;
};

RunResult run_both(std::string_view src, ArchState init = {},
                   Cycle max_cycles = 20000, CoreConfig cfg = {}) {
  Program prog;
  prog.code = isa::assemble(src);

  isa::GoldenModel gm(CoreConfig::kMemBytes);
  gm.reset(prog, init);
  EXPECT_EQ(gm.run(1u << 20), isa::GoldenModel::Status::Stopped);

  Pearl6Model model(cfg);
  model.load_workload(prog, init);
  emu::Emulator emu(model);
  emu.reset();

  RunResult r;
  for (Cycle c = 0; c < max_cycles; ++c) {
    emu.step();
    const emu::RasStatus ras = model.ras_status(emu.state());
    EXPECT_FALSE(ras.checkstop) << "fault-free run checkstopped";
    EXPECT_FALSE(ras.hang_detected) << "fault-free run hung";
    EXPECT_EQ(ras.recovery_count, 0u) << "fault-free run recovered";
    if (ras.test_finished) {
      r.finished = true;
      r.instructions = ras.instructions_completed;
      break;
    }
  }
  r.cycles = emu.cycle();
  r.core_state = model.arch_state(emu.state());
  r.golden_state = gm.state();
  EXPECT_TRUE(r.finished) << "core did not finish within " << max_cycles;
  return r;
}

void expect_match(const RunResult& r) {
  const std::string d = r.core_state.diff(r.golden_state);
  EXPECT_TRUE(d.empty()) << "core vs golden: " << d;
}

TEST(CoreBasic, MinimalStop) {
  const RunResult r = run_both("stop");
  expect_match(r);
  EXPECT_EQ(r.instructions, 0u);  // STOP itself is not counted
}

TEST(CoreBasic, StraightLineArithmetic) {
  const RunResult r = run_both(R"(
    li r1, 6
    li r2, 7
    mulld r3, r1, r2
    subf r4, r1, r3
    divd r5, r3, r2
    neg r6, r5
    extsw r7, r6
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[3], 42u);
}

TEST(CoreBasic, DependentAluChain) {
  const RunResult r = run_both(R"(
    li r1, 1
    add r1, r1, r1
    add r1, r1, r1
    add r1, r1, r1
    add r1, r1, r1
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[1], 16u);
}

TEST(CoreBasic, LogicalAndShifts) {
  const RunResult r = run_both(R"(
    li r1, 0x0FF0
    ori r2, r1, 0x00FF
    xori r3, r2, 0x0F0F
    andi r4, r3, 0xFFF0
    sld r5, r4, r1
    srd r6, r5, r1
    srad r7, r6, r1
    nor r8, r7, r1
    stop
  )");
  expect_match(r);
}

TEST(CoreBasic, MemoryRoundTrip) {
  const RunResult r = run_both(R"(
    li   r1, 0x4000
    li   r2, -123
    std  r2, 16(r1)
    ld   r3, 16(r1)
    lwz  r4, 16(r1)
    lbz  r5, 16(r1)
    stb  r5, 100(r1)
    lbz  r6, 100(r1)
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[3], static_cast<u64>(-123));
}

TEST(CoreBasic, UnalignedAccessUsesUncachedPath) {
  const RunResult r = run_both(R"(
    li  r1, 0x4005        # 8-byte access crossing an 8B boundary
    li  r2, 0x7EF1
    std r2, 0(r1)
    ld  r3, 0(r1)
    lwz r4, 1(r1)
    stop
  )");
  expect_match(r);
}

TEST(CoreBasic, CountedLoop) {
  const RunResult r = run_both(R"(
    li r1, 25
    mtctr r1
    li r2, 0
  loop:
    addi r2, r2, 3
    bdnz loop
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[2], 75u);
}

TEST(CoreBasic, ConditionalsAndCr) {
  const RunResult r = run_both(R"(
    li r1, 5
    cmpi 0, r1, 7
    blt 0, less
    li r2, 111
    b end
  less:
    li r2, 222
    cmpi 3, r2, 222
    beq 3, end
    li r2, 333
  end:
    cmp 1, r1, r2
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[2], 222u);
}

TEST(CoreBasic, CallReturn) {
  const RunResult r = run_both(R"(
    bl f1
    li r10, 1
    bl f1
    li r11, 2
    stop
  f1:
    addi r3, r3, 7
    blr
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[3], 14u);
}

TEST(CoreBasic, IndirectBranchViaCtr) {
  const RunResult r = run_both(R"(
    li r1, 0x1000
    addi r1, r1, 24
    mtctr r1
    bctr
    li r2, 1
    li r2, 2
  target:
    li r3, 5
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[2], 0u);
  EXPECT_EQ(r.core_state.gpr[3], 5u);
}

TEST(CoreBasic, FloatingPointPipeline) {
  ArchState init;
  init.fpr[1] = std::bit_cast<u64>(1.5);
  init.fpr[2] = std::bit_cast<u64>(2.5);
  const RunResult r = run_both(R"(
    fadd f3, f1, f2
    fmul f4, f3, f2
    fdiv f5, f4, f1
    fsub f6, f5, f4
    stop
  )", init);
  expect_match(r);
  EXPECT_EQ(std::bit_cast<double>(r.core_state.fpr[4]), 10.0);
}

TEST(CoreBasic, FpMemoryRoundTrip) {
  ArchState init;
  init.fpr[1] = std::bit_cast<u64>(3.25);
  const RunResult r = run_both(R"(
    li r1, 0x5000
    stfd f1, 0(r1)
    lfd f2, 0(r1)
    fadd f3, f2, f2
    stfd f3, 8(r1)
    lfd f4, 8(r1)
    stop
  )", init);
  expect_match(r);
  EXPECT_EQ(std::bit_cast<double>(r.core_state.fpr[4]), 6.5);
}

TEST(CoreBasic, SprMoves) {
  const RunResult r = run_both(R"(
    li r1, 777
    mtlr r1
    mflr r2
    li r3, 42
    mtctr r3
    mfctr r4
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[2], 777u);
  EXPECT_EQ(r.core_state.gpr[4], 42u);
}

TEST(CoreBasic, StoreLoadDependency) {
  // Loads stall until the store queue drains: memory must be coherent.
  const RunResult r = run_both(R"(
    li r1, 0x6000
    li r2, 11
    stw r2, 0(r1)
    lwz r3, 0(r1)
    addi r2, r2, 1
    stw r2, 0(r1)
    lwz r4, 0(r1)
    stop
  )");
  expect_match(r);
  EXPECT_EQ(r.core_state.gpr[3], 11u);
  EXPECT_EQ(r.core_state.gpr[4], 12u);
}

TEST(CoreBasic, CacheLineReuse) {
  // Repeated hits in one D-cache line plus store-invalidate behaviour.
  const RunResult r = run_both(R"(
    li r1, 0x7000
    li r5, 3
    mtctr r5
    li r6, 0
  loop:
    stw r6, 0(r1)
    lwz r7, 0(r1)
    add r6, r7, r5
    bdnz loop
    stop
  )");
  expect_match(r);
}

TEST(CoreBasic, GoldenTraceRecordsCompletion) {
  Program prog;
  prog.code = isa::assemble(R"(
    li r1, 9
    add r2, r1, r1
    stop
  )");
  Pearl6Model model;
  model.load_workload(prog, {});
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = emu::record_golden_trace(emu, 5000);
  EXPECT_TRUE(trace.completed);
  EXPECT_GT(trace.completion_cycle, 0u);
  EXPECT_GE(trace.hashes.size(), trace.completion_cycle);
  EXPECT_EQ(trace.final_state.gpr[2], 18u);
}

TEST(CoreBasic, DeterministicAcrossRuns) {
  const RunResult a = run_both("li r1, 3\n mulld r2, r1, r1\n stop");
  const RunResult b = run_both("li r1, 3\n mulld r2, r1, r1\n stop");
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.core_state.hash(), b.core_state.hash());
}

TEST(CoreBasic, CheckpointRestartIsExact) {
  Program prog;
  prog.code = isa::assemble(R"(
    li r1, 100
    mtctr r1
    li r2, 0
  loop:
    addi r2, r2, 1
    bdnz loop
    stop
  )");
  Pearl6Model model;
  model.load_workload(prog, {});
  emu::Emulator emu(model);
  emu.reset();
  emu.run(50);
  const emu::Checkpoint cp = emu.save_checkpoint();
  emu.run(100);
  const u64 hash_at_150 =
      emu.state().masked_hash(model.registry().hash_masks());

  emu.restore_checkpoint(cp);
  EXPECT_EQ(emu.cycle(), 50u);
  emu.run(100);
  EXPECT_EQ(emu.state().masked_hash(model.registry().hash_masks()),
            hash_at_150);
}

TEST(CoreBasic, RawModeRunsIdenticallyWhenFaultFree) {
  CoreConfig raw;
  raw.checkers_enabled = false;
  const RunResult r = run_both(R"(
    li r1, 12
    mtctr r1
    li r2, 1
  loop:
    add r2, r2, r2
    bdnz loop
    stop
  )", {}, 20000, raw);
  expect_match(r);
}

TEST(CoreBasic, CpiIsSane) {
  const RunResult r = run_both(R"(
    li r1, 40
    mtctr r1
    li r2, 0
  loop:
    addi r2, r2, 1
    addi r3, r2, 2
    addi r4, r3, 3
    bdnz loop
    stop
  )");
  expect_match(r);
  const double cpi =
      static_cast<double>(r.cycles) / static_cast<double>(r.instructions);
  EXPECT_LT(cpi, 8.0) << "pipeline pathologically slow";
  EXPECT_GT(cpi, 0.99);
}

}  // namespace
}  // namespace sfi::core
