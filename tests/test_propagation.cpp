// Propagation forensics: trace-selection policy, 'P'-frame codec round-trip,
// store interleaving, and the subsystem's headline invariants — injection
// records and store bytes are identical with forensics on, and surviving
// faults produce non-trivial infection footprints.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "avp/testgen.hpp"
#include "sched/scheduler.hpp"
#include "sfi/campaign.hpp"
#include "sfi/propagation.hpp"
#include "store/merge.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"

namespace sfi {
namespace {

using inject::FootprintConfig;
using inject::FootprintSample;
using inject::Outcome;
using inject::PropagationRecord;

avp::Testcase small_testcase(u64 seed = 11) {
  avp::TestcaseConfig cfg;
  cfg.seed = seed;
  cfg.num_instructions = 80;
  return avp::generate_testcase(cfg);
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sfi_prop_" + name + ".sfr"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

store::CampaignMeta sample_meta() {
  store::CampaignMeta m;
  m.seed = 42;
  m.num_injections = 7;
  m.config_fingerprint = 0x1234'5678'9abc'def0ull;
  m.workload_id = 0xfeed'beefull;
  m.population_size = 13760;
  m.workload_cycles = 982;
  m.workload_instructions = 238;
  m.window_begin = 1;
  m.window_end = 981;
  return m;
}

store::StoredRecord sample_record(u32 index) {
  store::StoredRecord sr;
  sr.index = index;
  sr.rec.fault.index = 100 + index;
  sr.rec.fault.cycle = 10 + index;
  sr.rec.outcome = static_cast<Outcome>(index % inject::kNumOutcomes);
  sr.rec.unit = static_cast<netlist::Unit>(index % netlist::kNumUnits);
  sr.rec.end_cycle = 500 + index;
  return sr;
}

PropagationRecord sample_prop(u32 index) {
  PropagationRecord p;
  p.index = index;
  p.unit = static_cast<netlist::Unit>(index % netlist::kNumUnits);
  p.type = static_cast<netlist::LatchType>(index % netlist::kNumLatchTypes);
  p.outcome = static_cast<Outcome>(index % inject::kNumOutcomes);
  p.fault_cycle = 30 + index;
  p.masked = index % 2 == 0;
  p.detected = index % 3 == 0;
  p.reached_arch = index % 2 == 1;
  p.reached_memory = index % 5 == 0;
  p.truncated = index % 7 == 0;
  p.checker_fired = index % 3 == 0;
  p.checker_fatal = index % 6 == 0;
  p.checker = static_cast<core::CheckerId>(index % core::kNumCheckers);
  p.masked_at = p.masked ? 16 + index : 0;
  p.detected_at = p.detected ? 4 + index : 0;
  p.peak_bits = 10 + index;
  p.rerun_cycles = 100 + index;
  for (std::size_t u = 0; u < netlist::kNumUnits; ++u) {
    p.first_corrupt[u] =
        u % 2 == 1 ? inject::kNeverCorrupted : index + static_cast<u32>(u);
  }
  for (u32 s = 0; s < 1 + index % 4; ++s) {
    FootprintSample fs;
    fs.offset = 1u << s;
    fs.total_bits = 5 * s + index;
    for (std::size_t u = 0; u < netlist::kNumUnits; ++u) {
      fs.unit_bits[u] = s + static_cast<u32>(u);
    }
    p.samples.push_back(fs);
  }
  return p;
}

// --- trace-selection policy -----------------------------------------------

TEST(FootprintPolicy, DisabledNeverTraces) {
  FootprintConfig cfg;  // enabled = false
  for (const auto o : inject::kAllOutcomes) {
    EXPECT_FALSE(inject::footprint_should_trace(cfg, 0, o));
  }
}

TEST(FootprintPolicy, NonVanishedAlwaysTraced) {
  FootprintConfig cfg;
  cfg.enabled = true;
  cfg.vanished_sample = 0;  // even with Vanished tracing fully off
  for (const auto o : inject::kAllOutcomes) {
    if (o == Outcome::Vanished) continue;
    for (const u32 i : {0u, 1u, 7u, 12345u}) {
      EXPECT_TRUE(inject::footprint_should_trace(cfg, i, o));
    }
  }
}

TEST(FootprintPolicy, VanishedSampledEveryNth) {
  FootprintConfig cfg;
  cfg.enabled = true;
  cfg.vanished_sample = 8;
  u32 traced = 0;
  for (u32 i = 0; i < 64; ++i) {
    if (inject::footprint_should_trace(cfg, i, Outcome::Vanished)) ++traced;
  }
  EXPECT_EQ(traced, 8u);  // deterministic in the index, not random

  cfg.vanished_sample = 0;
  for (u32 i = 0; i < 64; ++i) {
    EXPECT_FALSE(inject::footprint_should_trace(cfg, i, Outcome::Vanished));
  }
}

TEST(FootprintPolicy, UnitsCrossedExcludesOrigin) {
  PropagationRecord p;
  p.unit = netlist::Unit::FXU;
  p.first_corrupt.fill(inject::kNeverCorrupted);
  EXPECT_EQ(p.units_crossed(), 0u);
  p.first_corrupt[static_cast<std::size_t>(netlist::Unit::FXU)] = 0;
  EXPECT_EQ(p.units_crossed(), 0u);  // origin does not count as a crossing
  p.first_corrupt[static_cast<std::size_t>(netlist::Unit::LSU)] = 4;
  p.first_corrupt[static_cast<std::size_t>(netlist::Unit::IDU)] = 16;
  EXPECT_EQ(p.units_crossed(), 2u);
}

// --- codec ----------------------------------------------------------------

TEST(PropagationCodec, RoundTripAllFields) {
  for (u32 i = 0; i < 16; ++i) {
    const PropagationRecord p = sample_prop(i);
    const PropagationRecord back =
        store::decode_propagation(store::encode_propagation(p));
    EXPECT_EQ(store::encode_propagation(back), store::encode_propagation(p))
        << "index " << i;
    EXPECT_EQ(back.index, p.index);
    EXPECT_EQ(back.unit, p.unit);
    EXPECT_EQ(back.type, p.type);
    EXPECT_EQ(back.outcome, p.outcome);
    EXPECT_EQ(back.fault_cycle, p.fault_cycle);
    EXPECT_EQ(back.masked, p.masked);
    EXPECT_EQ(back.detected, p.detected);
    EXPECT_EQ(back.reached_arch, p.reached_arch);
    EXPECT_EQ(back.reached_memory, p.reached_memory);
    EXPECT_EQ(back.truncated, p.truncated);
    EXPECT_EQ(back.checker_fired, p.checker_fired);
    EXPECT_EQ(back.masked_at, p.masked_at);
    EXPECT_EQ(back.detected_at, p.detected_at);
    EXPECT_EQ(back.peak_bits, p.peak_bits);
    EXPECT_EQ(back.rerun_cycles, p.rerun_cycles);
    EXPECT_EQ(back.first_corrupt, p.first_corrupt);
    ASSERT_EQ(back.samples.size(), p.samples.size());
    for (std::size_t s = 0; s < p.samples.size(); ++s) {
      EXPECT_EQ(back.samples[s].offset, p.samples[s].offset);
      EXPECT_EQ(back.samples[s].total_bits, p.samples[s].total_bits);
      EXPECT_EQ(back.samples[s].unit_bits, p.samples[s].unit_bits);
    }
  }
}

TEST(PropagationCodec, RejectsTrailingBytes) {
  std::vector<u8> payload = store::encode_propagation(sample_prop(3));
  payload.push_back(0);
  EXPECT_THROW((void)store::decode_propagation(payload), store::StoreError);
}

TEST(PropagationCodec, CorruptionNeverYieldsInvalidEnums) {
  const std::vector<u8> payload = store::encode_propagation(sample_prop(5));
  // Same discipline as the record codec: flip every byte to 0xFF and require
  // decode to either produce in-range enums/plausible sizes or throw —
  // notably the sample-count field, where 0xFF bytes claim ~4 billion
  // samples and must be rejected, not allocated.
  for (std::size_t pos = 0; pos < payload.size(); ++pos) {
    std::vector<u8> bad = payload;
    bad[pos] = 0xFF;
    try {
      const PropagationRecord r = store::decode_propagation(bad);
      EXPECT_LT(static_cast<std::size_t>(r.unit), netlist::kNumUnits);
      EXPECT_LT(static_cast<std::size_t>(r.type), netlist::kNumLatchTypes);
      EXPECT_LT(static_cast<std::size_t>(r.outcome), inject::kNumOutcomes);
      if (r.checker_fired) {
        EXPECT_LT(static_cast<std::size_t>(r.checker), core::kNumCheckers);
      }
      EXPECT_LE(r.samples.size(), bad.size());
    } catch (const store::StoreError&) {
      // rejection is the expected behaviour for enum/size bytes
    }
  }
}

// --- store interleaving ---------------------------------------------------

TEST(PropagationStore, FramesInterleaveWithoutDisturbingRecords) {
  TempFile f("interleave");
  {
    store::StoreWriter w = store::StoreWriter::create(f.path(), sample_meta());
    for (u32 i = 0; i < 5; ++i) {
      w.append(sample_record(i));
      if (i % 2 == 0) w.append_propagation(sample_prop(i));
    }
    w.flush();
    // Footprints are forensic sidecars, not records.
    EXPECT_EQ(w.records_written(), 5u);
  }

  // The record reader sees exactly the records, in order, as if the 'P'
  // frames were not there.
  const store::StoreContents c = store::read_store(f.path());
  ASSERT_EQ(c.records.size(), 5u);
  for (u32 i = 0; i < 5; ++i) EXPECT_EQ(c.records[i].index, i);
  EXPECT_FALSE(c.torn_tail);

  // The propagation reader sees exactly the footprints.
  std::vector<PropagationRecord> fps;
  const u64 n = store::for_each_propagation(
      f.path(), [&](const PropagationRecord& p) { fps.push_back(p); });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_EQ(fps[0].index, 0u);
  EXPECT_EQ(fps[1].index, 2u);
  EXPECT_EQ(fps[2].index, 4u);
  EXPECT_EQ(store::encode_propagation(fps[1]),
            store::encode_propagation(sample_prop(2)));
}

TEST(PropagationStore, UnknownFrameKindsAreSkippedForward) {
  TempFile f("unknown_kind");
  {
    store::StoreWriter w = store::StoreWriter::create(f.path(), sample_meta());
    w.append(sample_record(0));
    w.flush();
  }
  // Append a well-formed frame of a kind this build has never heard of — a
  // hypothetical future extension. Readers must skip it, not choke.
  {
    const std::vector<u8> payload = {1, 2, 3, 4};
    const std::vector<u8> frame = store::make_frame('Z', payload);
    std::ofstream out(f.path(), std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  {
    store::StoreWriter w = store::StoreWriter::append_to(f.path());
    w.append(sample_record(1));
    w.flush();
  }

  const store::StoreContents c = store::read_store(f.path());
  ASSERT_EQ(c.records.size(), 2u);
  EXPECT_EQ(c.records[1].index, 1u);
  EXPECT_EQ(store::for_each_propagation(f.path(),
                                        [](const PropagationRecord&) {}),
            0u);
}

// --- campaign integration -------------------------------------------------

TEST(PropagationCampaign, RecordsIdenticalAndFootprintsNonTrivial) {
  const avp::Testcase tc = small_testcase(21);
  inject::CampaignConfig off;
  off.seed = 1234;
  off.num_injections = 150;
  off.threads = 2;
  inject::CampaignConfig on = off;
  on.footprint.enabled = true;
  on.footprint.vanished_sample = 4;

  const inject::CampaignResult a = inject::run_campaign(tc, off);
  const inject::CampaignResult b = inject::run_campaign(tc, on);

  // Forensics are observability: every record field is unchanged.
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << i;
    EXPECT_EQ(a.records[i].unit, b.records[i].unit) << i;
    EXPECT_EQ(a.records[i].type, b.records[i].type) << i;
    EXPECT_EQ(a.records[i].end_cycle, b.records[i].end_cycle) << i;
    EXPECT_EQ(a.records[i].early_exited, b.records[i].early_exited) << i;
    EXPECT_EQ(a.records[i].recoveries, b.records[i].recoveries) << i;
    EXPECT_EQ(a.records[i].fault.index, b.records[i].fault.index) << i;
    EXPECT_EQ(a.records[i].fault.cycle, b.records[i].fault.cycle) << i;
  }
  EXPECT_TRUE(a.footprints.empty());

  // Every non-Vanished injection is traced; Vanished ones per the sampling.
  u64 expect_traced = 0;
  for (std::size_t i = 0; i < b.records.size(); ++i) {
    if (inject::footprint_should_trace(on.footprint, static_cast<u32>(i),
                                       b.records[i].outcome)) {
      ++expect_traced;
    }
  }
  ASSERT_EQ(b.footprints.size(), expect_traced);
  ASSERT_GT(expect_traced, 0u);

  u64 nonvanished = 0;
  u64 with_peak = 0;
  for (std::size_t k = 0; k < b.footprints.size(); ++k) {
    const PropagationRecord& p = b.footprints[k];
    if (k > 0) {
      EXPECT_LT(b.footprints[k - 1].index, p.index);  // sorted
    }
    ASSERT_LT(p.index, b.records.size());
    const inject::InjectionRecord& r = b.records[p.index];
    // Denormalized origin/outcome agree with the injection record.
    EXPECT_EQ(p.outcome, r.outcome) << p.index;
    EXPECT_EQ(p.unit, r.unit) << p.index;
    EXPECT_EQ(p.type, r.type) << p.index;
    EXPECT_EQ(p.fault_cycle, r.fault.cycle) << p.index;
    EXPECT_GT(p.rerun_cycles, 0u) << p.index;
    if (p.outcome != Outcome::Vanished) {
      ++nonvanished;
      EXPECT_FALSE(p.samples.empty()) << p.index;
    }
    if (p.peak_bits > 0) ++with_peak;
    for (const FootprintSample& s : p.samples) {
      u32 unit_sum = 0;
      for (const u32 ub : s.unit_bits) unit_sum += ub;
      EXPECT_LE(unit_sum, s.total_bits) << p.index;
      EXPECT_LE(s.total_bits, p.peak_bits) << p.index;
    }
    if (p.masked) {
      EXPECT_GE(p.masked_at, 1u) << p.index;
    }
  }
  EXPECT_GT(nonvanished, 0u);
  EXPECT_GT(with_peak, 0u);
}

TEST(PropagationCampaign, EveryCycleSamplingYieldsDenseOffsets) {
  const avp::Testcase tc = small_testcase(31);
  inject::CampaignConfig cfg;
  cfg.seed = 5;
  cfg.num_injections = 40;
  cfg.threads = 1;
  cfg.footprint.enabled = true;
  cfg.footprint.vanished_sample = 2;
  cfg.footprint.sampling = inject::FootprintSampling::EveryCycle;
  cfg.footprint.max_trace_cycles = 64;

  const inject::CampaignResult r = inject::run_campaign(tc, cfg);
  ASSERT_FALSE(r.footprints.empty());
  for (const PropagationRecord& p : r.footprints) {
    for (std::size_t s = 1; s < p.samples.size(); ++s) {
      // Dense sampling: consecutive offsets differ by exactly one cycle
      // (the offset-0 seed sample included).
      EXPECT_EQ(p.samples[s].offset, p.samples[s - 1].offset + 1) << p.index;
    }
  }
}

// --- scheduler / store end to end -----------------------------------------

TEST(PropagationScheduler, CanonicalStoreBytesIdenticalWithForensicsOn) {
  const avp::Testcase tc = small_testcase(41);
  inject::CampaignConfig off;
  off.seed = 77;
  off.num_injections = 90;
  off.threads = 2;
  inject::CampaignConfig on = off;
  on.footprint.enabled = true;
  on.footprint.vanished_sample = 4;

  TempFile fa("sched_off");
  TempFile fb("sched_on");
  const sched::ScheduledResult ra =
      sched::run_campaign_to_store(tc, off, fa.path());
  const sched::ScheduledResult rb =
      sched::run_campaign_to_store(tc, on, fb.path());
  EXPECT_TRUE(ra.complete);
  EXPECT_TRUE(rb.complete);
  EXPECT_EQ(ra.footprints, 0u);
  EXPECT_GT(rb.footprints, 0u);
  EXPECT_EQ(store::for_each_propagation(fb.path(),
                                        [](const PropagationRecord&) {}),
            rb.footprints);

  // The footprint-on store is larger (it carries 'P' frames)...
  EXPECT_GT(slurp(fb.path()).size(), slurp(fa.path()).size());

  // ...but its canonical merge — the byte-identity surface — is identical.
  TempFile ma("merged_off");
  TempFile mb("merged_on");
  (void)store::merge_stores({fa.path()}, ma.path());
  (void)store::merge_stores({fb.path()}, mb.path());
  EXPECT_EQ(slurp(ma.path()), slurp(mb.path()));
}

}  // namespace
}  // namespace sfi
