#include <gtest/gtest.h>

#include "common/check.hpp"
#include "netlist/array.hpp"

namespace sfi::netlist {
namespace {

TEST(ProtectedArray, ParityDetectsFlips) {
  ProtectedArray arr("t.par", Unit::LSU, ArrayProtection::Parity, 8, 64);
  arr.write(3, 0xDEAD);
  EXPECT_EQ(arr.read(3).status, ArrayReadStatus::Clean);
  EXPECT_EQ(arr.read(3).value, 0xDEADu);
  arr.flip_storage_bit(3 * 65 + 5);  // data bit 5 of entry 3
  EXPECT_EQ(arr.read(3).status, ArrayReadStatus::Detected);
  // Check-bit flip also detected.
  arr.flip_storage_bit(3 * 65 + 5);  // restore
  arr.flip_storage_bit(3 * 65 + 64);  // the parity bit
  EXPECT_EQ(arr.read(3).status, ArrayReadStatus::Detected);
}

TEST(ProtectedArray, EccCorrectsAndScrubs) {
  ProtectedArray arr("t.ecc", Unit::RUT, ArrayProtection::SecDed, 4, 64);
  arr.write(1, 0x12345678u);
  arr.flip_storage_bit(1 * 72 + 7);
  const auto r1 = arr.read(1);
  EXPECT_EQ(r1.status, ArrayReadStatus::Corrected);
  EXPECT_EQ(r1.value, 0x12345678u);
  // Scrub-on-read restored a clean code word.
  EXPECT_EQ(arr.read(1).status, ArrayReadStatus::Clean);
}

TEST(ProtectedArray, EccDoubleBitDetected) {
  ProtectedArray arr("t.ecc", Unit::RUT, ArrayProtection::SecDed, 4, 64);
  arr.write(0, ~u64{0});
  arr.flip_storage_bit(3);
  arr.flip_storage_bit(40);
  EXPECT_EQ(arr.read(0).status, ArrayReadStatus::Detected);
}

TEST(ProtectedArray, PeekDecodedHasNoSideEffect) {
  ProtectedArray arr("t.ecc", Unit::RUT, ArrayProtection::SecDed, 4, 64);
  arr.write(2, 99);
  arr.flip_storage_bit(2 * 72 + 0);
  EXPECT_EQ(arr.peek_decoded(2).status, ArrayReadStatus::Corrected);
  EXPECT_EQ(arr.peek_decoded(2).value, 99u);
  // Still corrupted in storage (no scrub).
  EXPECT_EQ(arr.peek_decoded(2).status, ArrayReadStatus::Corrected);
}

TEST(ProtectedArray, SaveLoadRoundTrip) {
  ProtectedArray a("t", Unit::LSU, ArrayProtection::Parity, 8, 64);
  for (u32 i = 0; i < 8; ++i) a.write(i, i * 0x1111);
  a.flip_storage_bit(77);
  std::vector<u8> blob;
  a.save(blob);

  ProtectedArray b("t", Unit::LSU, ArrayProtection::Parity, 8, 64);
  std::span<const u8> in(blob);
  b.load(in);
  EXPECT_TRUE(in.empty());
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(a.raw_data(i), b.raw_data(i));
    EXPECT_EQ(a.raw_check(i), b.raw_check(i));
  }
}

TEST(ProtectedArray, SecDedRequires64) {
  EXPECT_THROW(
      ProtectedArray("t", Unit::RUT, ArrayProtection::SecDed, 4, 32),
      UsageError);
}

TEST(ArrayRegistry, LocateSpansArrays) {
  ProtectedArray a("a", Unit::IFU, ArrayProtection::Parity, 2, 64);  // 130 bits
  ProtectedArray b("b", Unit::RUT, ArrayProtection::SecDed, 2, 64);  // 144 bits
  ArrayRegistry reg;
  reg.add(a);
  reg.add(b);
  EXPECT_EQ(reg.total_storage_bits(), 130u + 144u);
  EXPECT_EQ(reg.locate(0).array, &a);
  EXPECT_EQ(reg.locate(129).array, &a);
  EXPECT_EQ(reg.locate(130).array, &b);
  EXPECT_EQ(reg.locate(130).local_bit, 0u);
  EXPECT_EQ(reg.locate(273).array, &b);
  EXPECT_THROW((void)reg.locate(274), UsageError);
}

TEST(ArrayRegistry, FlipThroughRegistry) {
  ProtectedArray a("a", Unit::IFU, ArrayProtection::Parity, 2, 64);
  ArrayRegistry reg;
  reg.add(a);
  a.write(1, 0);
  const auto t = reg.locate(65 + 10);
  t.array->flip_storage_bit(t.local_bit);
  EXPECT_EQ(a.read(1).status, ArrayReadStatus::Detected);
}

}  // namespace
}  // namespace sfi::netlist
