#include <gtest/gtest.h>

#include <set>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "workload/spec_profiles.hpp"

namespace sfi::avp {
namespace {

TEST(TestGen, Deterministic) {
  TestcaseConfig cfg;
  cfg.seed = 77;
  const Testcase a = generate_testcase(cfg);
  const Testcase b = generate_testcase(cfg);
  EXPECT_EQ(a.program.code, b.program.code);
  EXPECT_EQ(a.init, b.init);
  EXPECT_EQ(a.program.data.at(0).bytes, b.program.data.at(0).bytes);
}

TEST(TestGen, SeedsDiffer) {
  TestcaseConfig a;
  a.seed = 1;
  TestcaseConfig b;
  b.seed = 2;
  EXPECT_NE(generate_testcase(a).program.code,
            generate_testcase(b).program.code);
}

TEST(TestGen, EndsWithStopAndLandingPad) {
  const Testcase tc = generate_testcase({});
  ASSERT_GE(tc.program.code.size(), 7u);
  EXPECT_EQ(tc.program.code.back(), isa::kStopWord);
  // The 6 words before STOP are the nop landing pad.
  for (std::size_t i = tc.program.code.size() - 7;
       i < tc.program.code.size() - 1; ++i) {
    EXPECT_EQ(isa::decode(tc.program.code[i]).mn, isa::Mnemonic::ORI);
  }
}

TEST(TestGen, EveryTestcaseTerminates) {
  for (u64 seed = 1000; seed < 1100; ++seed) {
    TestcaseConfig cfg;
    cfg.seed = seed;
    cfg.num_instructions = 120;
    const Testcase tc = generate_testcase(cfg);
    isa::GoldenModel gm(1u << 16);
    gm.reset(tc.program, tc.init);
    // Dynamic length is bounded by static length × max loop count.
    EXPECT_EQ(gm.run(50000), isa::GoldenModel::Status::Stopped)
        << "seed " << seed;
  }
}

TEST(TestGen, BaseRegistersNeverWritten) {
  for (u64 seed = 1; seed < 40; ++seed) {
    TestcaseConfig cfg;
    cfg.seed = seed;
    const Testcase tc = generate_testcase(cfg);
    for (const u32 w : tc.program.code) {
      const isa::Instr in = isa::decode(w);
      if (in.writes_gpr()) {
        EXPECT_LT(in.rt, 30) << "seed " << seed;
      }
    }
  }
}

TEST(TestGen, MixApproximatesProfile) {
  TestcaseConfig cfg;
  cfg.seed = 5;
  cfg.num_instructions = 4000;
  const Testcase tc = generate_testcase(cfg);
  const GoldenResult g = run_golden(tc, 1u << 22);
  const double n = static_cast<double>(g.instructions);
  const double loads =
      static_cast<double>(
          g.class_counts[static_cast<std::size_t>(isa::InstrClass::Load)]) / n;
  const double stores =
      static_cast<double>(
          g.class_counts[static_cast<std::size_t>(isa::InstrClass::Store)]) / n;
  // Dynamic mix tracks the static profile within a loose tolerance (loops
  // re-execute bodies, so exact equality is not expected).
  EXPECT_NEAR(loads, cfg.mix.load, 0.08);
  EXPECT_NEAR(stores, cfg.mix.store, 0.08);
}

TEST(TestGen, RejectsBadConfigs) {
  TestcaseConfig tiny;
  tiny.num_instructions = 2;
  EXPECT_THROW((void)generate_testcase(tiny), UsageError);
  TestcaseConfig odd;
  odd.data_size = 1000;  // not a power of two
  EXPECT_THROW((void)generate_testcase(odd), UsageError);
}

TEST(Runner, MeasureMixProducesSaneCpi) {
  TestcaseConfig cfg;
  cfg.seed = 9;
  cfg.num_instructions = 200;
  const MixReport rep = measure_mix(generate_testcase(cfg));
  EXPECT_GT(rep.instructions, 100u);
  EXPECT_GT(rep.cpi, 1.0);
  EXPECT_LT(rep.cpi, 12.0);
  double total = 0.0;
  for (const double f : rep.fractions) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Runner, VerdictDetectsStateMismatch) {
  TestcaseConfig cfg;
  cfg.seed = 13;
  const Testcase tc = generate_testcase(cfg);
  GoldenResult golden = run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  (void)run_reference(model, emu, tc);
  EXPECT_TRUE(check_against_golden(model, emu.state(), golden).state_matches);
  golden.final_state.gpr[5] ^= 1;  // corrupt the expectation
  const Verdict v = check_against_golden(model, emu.state(), golden);
  EXPECT_FALSE(v.state_matches);
  EXPECT_FALSE(v.first_diff.empty());
}

TEST(Workload, ElevenComponentsWithinPaperEnvelope) {
  const auto comps = workload::spec_components();
  ASSERT_EQ(comps.size(), 11u);
  std::set<std::string> names;
  for (const auto& c : comps) {
    names.insert(c.name);
    EXPECT_NEAR(c.mix.total(), 1.0, 0.02) << c.name;
    EXPECT_GE(c.mix.load, 0.189 - 1e-9) << c.name;
    EXPECT_LE(c.mix.load, 0.356 + 1e-9) << c.name;
    EXPECT_GE(c.mix.store, 0.064 - 1e-9) << c.name;
    EXPECT_LE(c.mix.store, 0.317 + 1e-9) << c.name;
    EXPECT_LE(c.mix.fp, 0.091 + 1e-9) << c.name;
    EXPECT_GE(c.mix.cmp, 0.048 - 1e-9) << c.name;
    EXPECT_LE(c.mix.cmp, 0.151 + 1e-9) << c.name;
    EXPECT_GE(c.mix.branch, 0.069 - 1e-9) << c.name;
    EXPECT_LE(c.mix.branch, 0.288 + 1e-9) << c.name;
  }
  EXPECT_EQ(names.size(), 11u) << "component names must be unique";
}

TEST(Workload, ComponentTestcasesRunOnCore) {
  const auto comps = workload::spec_components();
  const avp::Testcase tc =
      workload::make_component_testcase(comps.front(), 3, 120);
  const MixReport rep = measure_mix(tc);
  EXPECT_GT(rep.instructions, 60u);
  EXPECT_GT(rep.cpi, 1.0);
}

TEST(Workload, AvpMixSitsInsideMeasuredEnvelope) {
  // The paper's Table 1 claim: the AVP fits within the SPECInt bounds.
  // Verified at profile level (measured-envelope version runs in the bench).
  const MixProfile avp = MixProfile::avp();
  const auto comps = workload::spec_components();
  double lo_load = 1.0;
  double hi_load = 0.0;
  for (const auto& c : comps) {
    lo_load = std::min(lo_load, c.mix.load);
    hi_load = std::max(hi_load, c.mix.load);
  }
  EXPECT_GE(avp.load, lo_load);
  EXPECT_LE(avp.load, hi_load);
}

}  // namespace
}  // namespace sfi::avp
