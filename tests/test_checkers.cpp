// Targeted fault-injection tests: known flips into known latches must
// produce the architecturally required RAS response. These pin down the
// checker/recovery semantics the statistical campaigns rely on.
#include <gtest/gtest.h>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "sfi/runner.hpp"
#include "sfi/tracer.hpp"

namespace sfi {
namespace {

using inject::FaultMode;
using inject::FaultSpec;
using inject::FaultTarget;
using inject::Outcome;

/// Harness bundling everything an InjectionRunner needs for one workload.
struct Harness {
  avp::Testcase tc;
  avp::GoldenResult golden;
  std::unique_ptr<core::Pearl6Model> model;
  std::unique_ptr<emu::Emulator> emu;
  emu::Checkpoint reset_cp;
  emu::GoldenTrace trace;
  std::unique_ptr<inject::InjectionRunner> runner;

  explicit Harness(std::string_view src, core::CoreConfig cfg = {},
                   inject::RunConfig run = {}) {
    tc.program.code = isa::assemble(src);
    golden = avp::run_golden(tc);
    model = std::make_unique<core::Pearl6Model>(cfg);
    emu = std::make_unique<emu::Emulator>(*model);
    trace = avp::run_reference(*model, *emu, tc);
    emu->reset();
    reset_cp = emu->save_checkpoint();
    runner = std::make_unique<inject::InjectionRunner>(
        *model, *emu, reset_cp, trace, golden, run);
  }

  /// First injectable ordinal whose latch name starts with `prefix`.
  [[nodiscard]] u32 ordinal(std::string_view prefix, u32 bit = 0) const {
    const auto ords = model->registry().collect_ordinals(
        [&](const netlist::LatchMeta& m) {
          return m.name.rfind(prefix, 0) == 0;
        });
    EXPECT_FALSE(ords.empty()) << "no latch named " << prefix;
    EXPECT_LT(bit, ords.size());
    return ords[bit];
  }

  [[nodiscard]] inject::RunResult flip(std::string_view prefix, u32 bit,
                                       Cycle cycle) {
    FaultSpec f;
    f.index = ordinal(prefix, bit);
    f.cycle = cycle;
    return runner->run(f);
  }
};

// A workload that keeps reading and writing a known register set.
constexpr std::string_view kLoopProgram = R"(
    li r1, 40
    mtctr r1
    li r2, 0
    li r3, 1
  loop:
    add r2, r2, r3
    cmpi 0, r2, 1000
    bdnz loop
    li r9, 0x2000
    stw r2, 0(r9)
    stop
)";

TEST(TargetedInjection, LiveGprFlipIsCorrected) {
  Harness h(kLoopProgram);
  // r2 is read every loop iteration: a flipped data bit must be caught by
  // the GPR parity checker and recovered.
  const auto r = h.flip("fxu.gpr2", 5, 30);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
  EXPECT_GE(r.recoveries, 1u);
}

TEST(TargetedInjection, LiveGprParityBitFlipAlsoRecovers) {
  Harness h(kLoopProgram);
  const auto r = h.flip("fxu.gpr2.p", 0, 30);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
}

TEST(TargetedInjection, DeadGprFlipVanishes) {
  Harness h(kLoopProgram);
  // r20 is never touched by the program; the RUT checkpoint is the
  // architected master, so the flip has no effect at all.
  const auto r = h.flip("fxu.gpr20", 7, 30);
  EXPECT_EQ(r.outcome, Outcome::Vanished);
  // Dead-register flips persist in the working file (no early hash
  // convergence) — the end-of-test compare against the ECC checkpoint is
  // what proves they vanished.
  EXPECT_FALSE(r.early_exited);
  EXPECT_EQ(r.recoveries, 0u);
}

TEST(TargetedInjection, CtrFlipDuringLoopIsCorrected) {
  Harness h(kLoopProgram);
  // CTR drives the loop; it is parity protected and read by every bdnz.
  const auto r = h.flip("idu.ctr", 3, 30);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
}

TEST(TargetedInjection, RawModeGprFlipEscapesDetection) {
  core::CoreConfig raw;
  raw.checkers_enabled = false;
  Harness h(kLoopProgram, raw);
  // Same live-register flip as above, but with every checker masked the
  // corruption flows into architected state: SDC (r2 is summed into memory).
  const auto r = h.flip("fxu.gpr2", 5, 30);
  EXPECT_EQ(r.outcome, Outcome::BadArchState);
  EXPECT_EQ(r.recoveries, 0u);
}

TEST(TargetedInjection, RutFsmFlipChecksto) {
  Harness h(kLoopProgram);
  // The RUT sequencer state is one-hot checked: any flip is fatal.
  const auto r0 = h.flip("rut.fsm", 0, 25);
  EXPECT_EQ(r0.outcome, Outcome::Checkstop);
  const auto r1 = h.flip("rut.fsm", 1, 25);
  EXPECT_EQ(r1.outcome, Outcome::Checkstop);
}

TEST(TargetedInjection, FatalFirFlipChecksto) {
  Harness h(kLoopProgram);
  const auto r = h.flip("core.fir.fatal", 2, 25);
  EXPECT_EQ(r.outcome, Outcome::Checkstop);
}

TEST(TargetedInjection, RecoverableFirFlipCausesSpuriousRecovery) {
  Harness h(kLoopProgram);
  const auto r = h.flip("core.fir.rec", 1, 25);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
  EXPECT_GE(r.recoveries, 1u);
}

TEST(TargetedInjection, CheckstopLatchFlipIsTerminal) {
  Harness h(kLoopProgram);
  const auto r = h.flip("core.checkstop", 0, 25);
  EXPECT_EQ(r.outcome, Outcome::Checkstop);
}

TEST(TargetedInjection, ClockStopModeFlipHangs) {
  Harness h(kLoopProgram);
  // MODE clock-stop engaged mid-run freezes the IDU: no completions, the
  // watchdog fires.
  const auto r = h.flip("idu.mode.clock_stop", 0, 25);
  EXPECT_EQ(r.outcome, Outcome::Hang);
}

TEST(TargetedInjection, ForceErrorModeFlipEscalatesViaThreshold) {
  Harness h(kLoopProgram);
  // A stuck force_error raises a permanent checker: recovery, re-fire,
  // recovery ... until the recovery-threshold breaker checkstops.
  const auto r = h.flip("fxu.mode.force_error", 0, 25);
  EXPECT_EQ(r.outcome, Outcome::Checkstop);
}

TEST(TargetedInjection, RecoveryDisableFlipAloneVanishes) {
  Harness h(kLoopProgram);
  // Disabling recovery has no effect in an otherwise error-free run.
  const auto r = h.flip("core.mode.rec_enable", 0, 25);
  EXPECT_EQ(r.outcome, Outcome::Vanished);
}

TEST(TargetedInjection, SpareModeFlipVanishes) {
  Harness h(kLoopProgram);
  const auto r = h.flip("idu.mode.spare", 4, 25);
  EXPECT_EQ(r.outcome, Outcome::Vanished);
}

TEST(TargetedInjection, SpareChainFlipVanishesQuickly) {
  Harness h(kLoopProgram);
  const auto r = h.flip("lsu.dbg0", 17, 25);
  EXPECT_EQ(r.outcome, Outcome::Vanished);
  EXPECT_TRUE(r.early_exited);
}

TEST(TargetedInjection, EccCheckpointArrayStrikeIsCorrected) {
  // A long-running loop so the background scrubber (one entry per 64
  // cycles) reaches the struck entry before the test ends.
  Harness h(R"(
    li r1, 800
    mtctr r1
  loop:
    addi r2, r2, 1
    bdnz loop
    stop
  )");
  FaultSpec f;
  f.target = FaultTarget::ArrayCell;
  // rut.ckpt is the third registered array; entry 20 = gpr20's checkpoint,
  // which the program never rewrites — only the scrubber can heal it.
  const u64 base = h.model->ifu().icache().data_array().storage_bits() +
                   h.model->lsu().dcache().data_array().storage_bits();
  f.array_bit = base + 20 * 72 + 9;
  f.cycle = 30;
  const auto r = h.runner->run(f);
  EXPECT_EQ(r.outcome, Outcome::Corrected);
  EXPECT_GE(r.corrected, 1u);
  EXPECT_EQ(r.recoveries, 0u);  // in-line correction, no pipeline recovery
}

TEST(TargetedInjection, IcacheDataArrayStrikeRecoversViaRefetch) {
  Harness h(kLoopProgram);
  FaultSpec f;
  f.target = FaultTarget::ArrayCell;
  // Strike an icache data entry holding live loop code.
  const u32 line = ((0x1000 + 16) / 16) % 16;  // line of the loop body
  f.array_bit = static_cast<u64>(line * 2) * 65 + 3;
  f.cycle = 30;
  const auto r = h.runner->run(f);
  // Either the line was already refetched (vanish) or parity fires and the
  // line is invalidated+refetched (corrected): never SDC.
  EXPECT_TRUE(r.outcome == Outcome::Corrected ||
              r.outcome == Outcome::Vanished)
      << to_string(r.outcome);
}

TEST(TargetedInjection, StickyStuckAtFaultEscalates) {
  Harness h(kLoopProgram);
  // Stuck-at-1 on a live GPR bit for 300 cycles: every recovery restores
  // the register, the stuck bit re-corrupts it, the threshold breaker
  // eventually checkstops.
  FaultSpec f;
  f.index = h.ordinal("fxu.gpr2", 6);
  f.cycle = 25;
  f.mode = FaultMode::Sticky;
  f.sticky_duration = 300;
  f.sticky_value = true;
  const auto r = h.runner->run(f);
  EXPECT_EQ(r.outcome, Outcome::Checkstop);
}

TEST(TargetedInjection, TraceCapturesCauseAndEffect) {
  Harness h(kLoopProgram);
  FaultSpec f;
  f.index = h.ordinal("fxu.gpr2", 5);
  f.cycle = 30;
  const auto trace = inject::trace_injection(*h.model, *h.emu, h.reset_cp,
                                             h.trace, h.golden, f);
  EXPECT_EQ(trace.result.outcome, Outcome::Corrected);
  ASSERT_TRUE(trace.detected());
  EXPECT_EQ(trace.events.front().kind,
            inject::TraceEvent::Kind::CheckerFired);
  EXPECT_EQ(trace.events.front().unit, netlist::Unit::FXU);
  // Recovery start and completion must both appear, in order.
  bool saw_start = false;
  bool saw_complete = false;
  for (const auto& e : trace.events) {
    if (e.kind == inject::TraceEvent::Kind::RecoveryStarted) saw_start = true;
    if (e.kind == inject::TraceEvent::Kind::RecoveryCompleted) {
      EXPECT_TRUE(saw_start);
      saw_complete = true;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_complete);
  const std::string text = inject::format_trace(trace);
  EXPECT_NE(text.find("Corrected"), std::string::npos);
  EXPECT_NE(text.find("fxu.gpr2"), std::string::npos);
}

TEST(TargetedInjection, DetectionBlocksCompletionBeforeArchitecting) {
  // The two-phase evaluate contract: a detected error must never complete
  // the erroring instruction. After any Corrected outcome the architected
  // state equals golden exactly (already asserted by the runner); here we
  // additionally check the memory image.
  Harness h(kLoopProgram);
  const auto r = h.flip("fxu.gpr2", 3, 40);
  ASSERT_EQ(r.outcome, Outcome::Corrected);
  const avp::Verdict v =
      avp::check_against_golden(*h.model, h.emu->state(), h.golden);
  EXPECT_TRUE(v.state_matches) << v.first_diff;
  EXPECT_TRUE(v.memory_matches);
}

}  // namespace
}  // namespace sfi
