// Cause→effect tracer coverage: event ordering, detection latency, and the
// invariant that attaching the observer never changes the run's outcome.
#include <gtest/gtest.h>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "sfi/runner.hpp"
#include "sfi/tracer.hpp"

namespace sfi {
namespace {

using inject::FaultSpec;
using inject::InjectionTrace;
using inject::Outcome;
using inject::TraceEvent;

// A workload that keeps reading and writing a known register set, so a
// flipped live GPR bit is reliably caught by the parity checker.
constexpr std::string_view kLoopProgram = R"(
    li r1, 40
    mtctr r1
    li r2, 0
    li r3, 1
  loop:
    add r2, r2, r3
    cmpi 0, r2, 1000
    bdnz loop
    li r9, 0x2000
    stw r2, 0(r9)
    stop
)";

struct Harness {
  avp::Testcase tc;
  avp::GoldenResult golden;
  std::unique_ptr<core::Pearl6Model> model;
  std::unique_ptr<emu::Emulator> emu;
  emu::Checkpoint reset_cp;
  emu::GoldenTrace trace;

  explicit Harness(core::CoreConfig cfg = {}) {
    tc.program.code = isa::assemble(kLoopProgram);
    golden = avp::run_golden(tc);
    model = std::make_unique<core::Pearl6Model>(cfg);
    emu = std::make_unique<emu::Emulator>(*model);
    trace = avp::run_reference(*model, *emu, tc);
    emu->reset();
    reset_cp = emu->save_checkpoint();
  }

  [[nodiscard]] u32 ordinal(std::string_view prefix, u32 bit = 0) const {
    const auto ords = model->registry().collect_ordinals(
        [&](const netlist::LatchMeta& m) {
          return m.name.rfind(prefix, 0) == 0;
        });
    EXPECT_FALSE(ords.empty()) << "no latch named " << prefix;
    EXPECT_LT(bit, ords.size());
    return ords[bit];
  }

  [[nodiscard]] FaultSpec fault(std::string_view prefix, u32 bit,
                                Cycle cycle) const {
    FaultSpec f;
    f.index = ordinal(prefix, bit);
    f.cycle = cycle;
    return f;
  }

  [[nodiscard]] InjectionTrace run_trace(const FaultSpec& f) {
    return inject::trace_injection(*model, *emu, reset_cp, trace, golden, f);
  }
};

TEST(Tracer, DetectedFaultYieldsOrderedEvents) {
  Harness h;
  const InjectionTrace t = h.run_trace(h.fault("fxu.gpr2", 5, 30));

  ASSERT_TRUE(t.detected());
  EXPECT_EQ(t.result.outcome, Outcome::Corrected);

  // Events arrive in simulation order: cycles are non-decreasing and none
  // predates the injection.
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_GE(t.events[i].cycle, t.fault.cycle) << "event " << i;
    if (i > 0) {
      EXPECT_GE(t.events[i].cycle, t.events[i - 1].cycle) << "event " << i;
    }
  }

  // A corrected GPR flip must show the full causal chain: checker fire
  // first, then a recovery start, then a recovery completion.
  EXPECT_EQ(t.events.front().kind, TraceEvent::Kind::CheckerFired);
  const auto find = [&](TraceEvent::Kind k) {
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      if (t.events[i].kind == k) return static_cast<long>(i);
    }
    return -1L;
  };
  const long started = find(TraceEvent::Kind::RecoveryStarted);
  const long completed = find(TraceEvent::Kind::RecoveryCompleted);
  ASSERT_GE(started, 0);
  ASSERT_GE(completed, 0);
  EXPECT_LT(started, completed);
}

TEST(Tracer, DetectionLatencyIsFirstEventDelta) {
  Harness h;
  const InjectionTrace t = h.run_trace(h.fault("fxu.gpr2", 5, 30));
  ASSERT_TRUE(t.detected());
  const auto latency = t.detection_latency();
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, t.events.front().cycle - t.fault.cycle);
  // A latency of 0 (detected in the injection cycle) is a legal value and
  // distinct from "never detected" — the optional encodes the difference.
}

TEST(Tracer, SilentFaultHasNoDetectionLatency) {
  Harness h;
  // r20 is never touched by the program: the flip produces no RAS event.
  const InjectionTrace t = h.run_trace(h.fault("fxu.gpr20", 7, 30));
  EXPECT_FALSE(t.detected());
  EXPECT_FALSE(t.detection_latency().has_value());
  EXPECT_TRUE(t.events.empty());
  EXPECT_EQ(t.result.outcome, Outcome::Vanished);
}

// detection_latency() unit coverage on hand-built traces: the three encoding
// cases (never detected, detected in the injection cycle, detected late)
// without simulating anything.
TEST(Tracer, DetectionLatencyNulloptWhenNoEvents) {
  InjectionTrace t;
  t.fault.cycle = 30;
  EXPECT_FALSE(t.detection_latency().has_value());
}

TEST(Tracer, DetectionLatencyZeroAtInjectionCycle) {
  InjectionTrace t;
  t.fault.cycle = 30;
  TraceEvent e;
  e.kind = TraceEvent::Kind::CheckerFired;
  e.cycle = 30;
  t.events.push_back(e);
  const auto latency = t.detection_latency();
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, 0u);  // zero latency, NOT "undetected"
}

TEST(Tracer, DetectionLatencyIsDeltaToFirstEvent) {
  InjectionTrace t;
  t.fault.cycle = 100;
  TraceEvent first;
  first.kind = TraceEvent::Kind::CheckerFired;
  first.cycle = 117;
  TraceEvent later;
  later.kind = TraceEvent::Kind::RecoveryStarted;
  later.cycle = 140;
  t.events.push_back(first);
  t.events.push_back(later);
  const auto latency = t.detection_latency();
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, 17u);  // first event counts, not the last
}

TEST(Tracer, TracedResultMatchesUntracedRunner) {
  Harness h;
  // The tracer disables early exit to observe the whole propagation; use
  // the same config for the reference runner so the comparison is exact.
  inject::RunConfig rc;
  rc.early_exit = false;

  for (const auto& f :
       {h.fault("fxu.gpr2", 5, 30), h.fault("fxu.gpr20", 7, 30),
        h.fault("idu.ctr", 3, 30)}) {
    const InjectionTrace t = h.run_trace(f);
    inject::InjectionRunner runner(*h.model, *h.emu, h.reset_cp, h.trace,
                                   h.golden, rc);
    const inject::RunResult r = runner.run(f);
    EXPECT_EQ(t.result.outcome, r.outcome);
    EXPECT_EQ(t.result.end_cycle, r.end_cycle);
    EXPECT_EQ(t.result.recoveries, r.recoveries);
    EXPECT_EQ(t.result.corrected, r.corrected);
    EXPECT_EQ(t.result.first_diff, r.first_diff);
    EXPECT_EQ(t.result.detected_cycle, r.detected_cycle);
  }
}

TEST(Tracer, RunnerDetectedCycleAgreesWithTraceEvents) {
  Harness h;
  const FaultSpec f = h.fault("fxu.gpr2", 5, 30);
  const InjectionTrace t = h.run_trace(f);
  ASSERT_TRUE(t.detected());
  // The runner derives detection from the machine's RAS status (recovery
  // becoming active), which trails the observer's checker-fire event by the
  // recovery-start pipeline delay — so it lands inside the traced event
  // window, never before it.
  ASSERT_TRUE(t.result.detected_cycle.has_value());
  EXPECT_GE(*t.result.detected_cycle, t.events.front().cycle);
  EXPECT_LE(*t.result.detected_cycle, t.events.back().cycle);
}

TEST(Tracer, FormatTraceRendersLatencyAndSilence) {
  Harness h;
  const InjectionTrace detected = h.run_trace(h.fault("fxu.gpr2", 5, 30));
  const std::string d = inject::format_trace(detected);
  EXPECT_NE(d.find("detection latency"), std::string::npos);
  EXPECT_NE(d.find("Corrected"), std::string::npos);

  const InjectionTrace silent = h.run_trace(h.fault("fxu.gpr20", 7, 30));
  const std::string s = inject::format_trace(silent);
  EXPECT_NE(s.find("no RAS events"), std::string::npos);
  EXPECT_EQ(s.find("detection latency"), std::string::npos);
}

TEST(Tracer, FatalFirFlipTracesToCheckstop) {
  Harness h;
  const InjectionTrace t = h.run_trace(h.fault("core.fir.fatal", 2, 25));
  EXPECT_EQ(t.result.outcome, Outcome::Checkstop);
  ASSERT_TRUE(t.detected());
  bool saw_checkstop = false;
  for (const auto& e : t.events) {
    if (e.kind == TraceEvent::Kind::Checkstop) saw_checkstop = true;
  }
  EXPECT_TRUE(saw_checkstop);
}

}  // namespace
}  // namespace sfi
