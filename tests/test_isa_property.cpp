// ISA property suite: encode/decode round trips over randomized fields and
// algebraic properties of the shared execution helpers (the single source of
// semantics for both the golden model and the pipeline).
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>

#include "common/bits.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/exec.hpp"
#include "stats/rng.hpp"

namespace sfi::isa {
namespace {

class EncodingFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(EncodingFuzz, DFormRoundTrips) {
  stats::Xoshiro256 rng(GetParam());
  const u32 opcds[] = {kOpAddi, kOpAddis, kOpLwz, kOpLbz, kOpLd,
                       kOpStw,  kOpStb,   kOpStd, kOpLfd, kOpStfd};
  for (int i = 0; i < 200; ++i) {
    const u32 opcd = opcds[rng.below(std::size(opcds))];
    const auto rt = static_cast<u32>(rng.below(32));
    const auto ra = static_cast<u32>(rng.below(32));
    const auto d = static_cast<u16>(rng.next());
    const Instr in = decode(enc_d(opcd, rt, ra, d));
    EXPECT_NE(in.mn, Mnemonic::ILLEGAL);
    if (opcd == kOpLfd || opcd == kOpStfd) {
      EXPECT_EQ(in.rt, rt % 32);  // FPR wrap happens at kOpFp only
    } else {
      EXPECT_EQ(in.rt, rt);
    }
    EXPECT_EQ(in.ra, ra);
    EXPECT_EQ(in.imm, sign_extend(d, 16));
  }
}

TEST_P(EncodingFuzz, XFormRoundTrips) {
  stats::Xoshiro256 rng(GetParam() + 100);
  const u32 xos[] = {kXoAdd, kXoSubf, kXoAnd,  kXoOr,   kXoXor,  kXoNor,
                     kXoSld, kXoSrd,  kXoSrad, kXoMulld, kXoDivd};
  for (int i = 0; i < 200; ++i) {
    const u32 xo = xos[rng.below(std::size(xos))];
    const auto rt = static_cast<u32>(rng.below(32));
    const auto ra = static_cast<u32>(rng.below(32));
    const auto rb = static_cast<u32>(rng.below(32));
    const Instr in = decode(enc_x(rt, ra, rb, xo));
    EXPECT_NE(in.mn, Mnemonic::ILLEGAL) << xo;
    EXPECT_EQ(in.rt, rt);
    EXPECT_EQ(in.ra, ra);
    EXPECT_EQ(in.rb, rb);
    EXPECT_EQ(in.cls, InstrClass::FixedPoint);
  }
}

TEST_P(EncodingFuzz, BranchDisplacementsRoundTrip) {
  stats::Xoshiro256 rng(GetParam() + 200);
  for (int i = 0; i < 200; ++i) {
    const auto words = static_cast<i32>(rng.below(8192)) - 4096;
    const Instr b = decode(enc_i(words * 4, rng.chance(0.5)));
    EXPECT_EQ(b.imm, words * 4);
    const auto words14 = static_cast<i32>(rng.below(4096)) - 2048;
    const Instr bc = decode(enc_b(kBoTrue, static_cast<u32>(rng.below(32)),
                                  words14 * 4, false));
    EXPECT_EQ(bc.imm, words14 * 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingFuzz, ::testing::Values(1, 2, 3));

TEST(ExecProperties, CommutativeOps) {
  stats::Xoshiro256 rng(9);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng.next();
    const u64 b = rng.next();
    for (const Mnemonic mn :
         {Mnemonic::ADD, Mnemonic::AND, Mnemonic::OR, Mnemonic::XOR,
          Mnemonic::NOR, Mnemonic::MULLD}) {
      EXPECT_EQ(alu_exec(mn, a, b), alu_exec(mn, b, a));
    }
  }
}

TEST(ExecProperties, SubfIsAddOfNegation) {
  stats::Xoshiro256 rng(10);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng.next();
    const u64 b = rng.next();
    // subf rt,ra,rb = rb - ra = rb + (-ra)
    EXPECT_EQ(alu_exec(Mnemonic::SUBF, a, b),
              alu_exec(Mnemonic::ADD, b, alu_exec(Mnemonic::NEG, a, 0)));
  }
}

TEST(ExecProperties, ShiftInverses) {
  stats::Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng.next();
    const u64 sh = rng.below(32);
    // (a << sh) >> sh recovers the low bits.
    const u64 shifted = alu_exec(Mnemonic::SLD, a, sh);
    EXPECT_EQ(alu_exec(Mnemonic::SRD, shifted, sh), a & (~u64{0} >> sh));
  }
}

TEST(ExecProperties, DivMulRoundTrip) {
  stats::Xoshiro256 rng(12);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<i64>(rng.next()) / 4;  // avoid overflow cases
    auto b = static_cast<i64>(rng.below(1u << 20)) + 1;
    if (rng.chance(0.5)) b = -b;
    const u64 q = alu_exec(Mnemonic::DIVD, static_cast<u64>(a),
                           static_cast<u64>(b));
    const u64 back = alu_exec(Mnemonic::MULLD, q, static_cast<u64>(b));
    const auto rem = static_cast<i64>(static_cast<u64>(a) - back);
    EXPECT_LT(std::abs(rem), std::abs(b));
  }
}

TEST(ExecProperties, CompareTrichotomy) {
  stats::Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const u64 a = rng.next();
    const u64 b = rng.next();
    for (const bool is_signed : {false, true}) {
      const u32 f = compare(a, b, is_signed);
      const int set = ((f >> kCrLt) & 1) + ((f >> kCrGt) & 1) +
                      ((f >> kCrEq) & 1);
      EXPECT_EQ(set, 1);  // exactly one of LT/GT/EQ
      // Antisymmetry: swap flips LT/GT.
      const u32 g = compare(b, a, is_signed);
      EXPECT_EQ((f >> kCrLt) & 1, (g >> kCrGt) & 1);
      EXPECT_EQ((f >> kCrEq) & 1, (g >> kCrEq) & 1);
    }
  }
}

TEST(ExecProperties, CrInsertExtractRoundTrip) {
  stats::Xoshiro256 rng(14);
  for (int i = 0; i < 500; ++i) {
    u32 cr = static_cast<u32>(rng.next());
    const u32 crf = static_cast<u32>(rng.below(8));
    const u32 field = static_cast<u32>(rng.below(16));
    const u32 updated = cr_insert(cr, crf, field);
    EXPECT_EQ(cr_extract(updated, crf), field);
    // Other fields untouched.
    for (u32 other = 0; other < 8; ++other) {
      if (other != crf) {
        EXPECT_EQ(cr_extract(updated, other), cr_extract(cr, other));
      }
    }
  }
}

TEST(ExecProperties, FpuMatchesHostArithmetic) {
  stats::Xoshiro256 rng(15);
  for (int i = 0; i < 500; ++i) {
    const double fa = (rng.uniform() - 0.5) * 1e6;
    const double fb = (rng.uniform() - 0.5) * 1e6;
    const u64 a = std::bit_cast<u64>(fa);
    const u64 b = std::bit_cast<u64>(fb);
    EXPECT_EQ(std::bit_cast<double>(fpu_exec(Mnemonic::FADD, a, b)), fa + fb);
    EXPECT_EQ(std::bit_cast<double>(fpu_exec(Mnemonic::FMUL, a, b)), fa * fb);
  }
}

TEST(ExecProperties, AssemblerGeneratorAgreement) {
  // The assembler and the raw encoders must produce identical words for
  // equivalent programs (the AVP generator uses the encoders directly).
  const auto code = assemble(R"(
    addi r3, r4, -17
    add r5, r3, r3
    lwz r6, 44(r31)
    stw r6, 48(r31)
    cmpi 2, r6, 100
    fadd f1, f2, f3
  )");
  ASSERT_EQ(code.size(), 6u);
  EXPECT_EQ(code[0], enc_d(kOpAddi, 3, 4, static_cast<u16>(-17)));
  EXPECT_EQ(code[1], enc_x(5, 3, 3, kXoAdd));
  EXPECT_EQ(code[2], enc_d(kOpLwz, 6, 31, 44));
  EXPECT_EQ(code[3], enc_d(kOpStw, 6, 31, 48));
  EXPECT_EQ(code[4], enc_d(kOpCmpi, 2, 6, 100));
  EXPECT_EQ(code[5], enc_fp(1, 2, 3, kFpAdd));
}

}  // namespace
}  // namespace sfi::isa
