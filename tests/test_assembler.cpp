#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace sfi::isa {
namespace {

TEST(Assembler, BasicInstructions) {
  const auto code = assemble(R"(
    addi r3, r0, 42
    add  r4, r3, r3
    stw  r4, 8(r1)
    lwz  r5, 8(r1)
    stop
  )");
  ASSERT_EQ(code.size(), 5u);
  EXPECT_EQ(decode(code[0]).mn, Mnemonic::ADDI);
  EXPECT_EQ(decode(code[0]).imm, 42);
  EXPECT_EQ(decode(code[1]).mn, Mnemonic::ADD);
  EXPECT_EQ(decode(code[2]).mn, Mnemonic::STW);
  EXPECT_EQ(decode(code[2]).imm, 8);
  EXPECT_EQ(decode(code[3]).mn, Mnemonic::LWZ);
  EXPECT_EQ(code[4], kStopWord);
}

TEST(Assembler, LabelsAndBranches) {
  const auto code = assemble(R"(
    li r3, 3
    mtctr r3
  loop:
    addi r4, r4, 1
    bdnz loop
    stop
  )");
  ASSERT_EQ(code.size(), 5u);
  const Instr bdnz = decode(code[3]);
  EXPECT_EQ(bdnz.mn, Mnemonic::BC);
  EXPECT_EQ(bdnz.bo, kBoDnz);
  EXPECT_EQ(bdnz.imm, -4);
}

TEST(Assembler, ForwardLabels) {
  const auto code = assemble(R"(
    b end
    nop
  end:
    stop
  )");
  EXPECT_EQ(decode(code[0]).imm, 8);
}

TEST(Assembler, CondAliases) {
  const auto code = assemble(R"(
    cmpi 0, r3, 5
  top:
    beq 0, top
    bne 0, top
    blt 2, top
    bgt 2, top
    stop
  )");
  const Instr beq = decode(code[1]);
  EXPECT_EQ(beq.bo, kBoTrue);
  EXPECT_EQ(beq.bi, 2);
  const Instr bne = decode(code[2]);
  EXPECT_EQ(bne.bo, kBoFalse);
  const Instr blt = decode(code[3]);
  EXPECT_EQ(blt.bi, 2 * 4 + 0);
  const Instr bgt = decode(code[4]);
  EXPECT_EQ(bgt.bi, 2 * 4 + 1);
}

TEST(Assembler, SprAliases) {
  const auto code = assemble("mtlr r5\n mflr r6\n mtctr r7\n mfctr r8\n blr");
  EXPECT_EQ(decode(code[0]).mn, Mnemonic::MTSPR);
  EXPECT_EQ(decode(code[0]).imm, kSprLr);
  EXPECT_EQ(decode(code[1]).mn, Mnemonic::MFSPR);
  EXPECT_EQ(decode(code[2]).imm, kSprCtr);
  EXPECT_EQ(decode(code[4]).mn, Mnemonic::BCLR);
}

TEST(Assembler, FloatingPoint) {
  const auto code = assemble("lfd f1, 0(r3)\n fadd f2, f1, f1\n stfd f2, 8(r3)");
  EXPECT_EQ(decode(code[0]).mn, Mnemonic::LFD);
  EXPECT_EQ(decode(code[1]).mn, Mnemonic::FADD);
  EXPECT_EQ(decode(code[2]).mn, Mnemonic::STFD);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto code = assemble(R"(
    # full line comment
    nop   # trailing comment

    stop
  )");
  EXPECT_EQ(code.size(), 2u);
}

TEST(Assembler, Errors) {
  EXPECT_THROW((void)assemble("frobnicate r1"), AsmError);
  EXPECT_THROW((void)assemble("addi r3"), AsmError);
  EXPECT_THROW((void)assemble("addi r3, r99, 0"), AsmError);
  EXPECT_THROW((void)assemble("addi r3, r0, 99999"), AsmError);
  EXPECT_THROW((void)assemble("b nowhere"), AsmError);
  EXPECT_THROW((void)assemble("lwz r3, r4"), AsmError);
  EXPECT_THROW((void)assemble("x: nop\n x: nop"), AsmError);
}

TEST(Assembler, DisassembleSmoke) {
  EXPECT_EQ(disassemble(decode(enc_d(kOpAddi, 3, 0, 42))), "addi r3, r0, 42");
  EXPECT_EQ(disassemble(decode(enc_x(4, 5, 6, kXoAdd))), "add r4, r5, r6");
  EXPECT_EQ(disassemble(kStopWord), "stop");
}

TEST(Assembler, RoundTripThroughDisassembler) {
  // Not a strict grammar round-trip (formatting differs), but every decoded
  // mnemonic must appear in its disassembly.
  const auto code = assemble(R"(
    addi r1, r2, -3
    mulld r3, r1, r1
    divd r4, r3, r1
    cmp 1, r3, r4
    srad r5, r3, r1
    stop
  )");
  for (const u32 w : code) {
    const Instr in = decode(w);
    const std::string text = disassemble(in);
    EXPECT_NE(text.find(to_string(in.mn)), std::string::npos) << text;
  }
}

}  // namespace
}  // namespace sfi::isa
