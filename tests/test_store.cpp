// Durable campaign store (src/store/) and resumable scheduler (src/sched/):
// round-trips, corruption detection, torn-tail recovery, shard merge, and
// the headline guarantee — an interrupted-then-resumed campaign is
// byte-identical (after canonical merge; here even raw) to an uninterrupted
// one with the same seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "avp/testgen.hpp"
#include "sched/scheduler.hpp"
#include "sfi/campaign.hpp"
#include "store/merge.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"

namespace sfi::store {
namespace {

/// Per-test scratch file, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sfi_test_" + name + ".sfr"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CampaignMeta sample_meta() {
  CampaignMeta m;
  m.seed = 42;
  m.num_injections = 7;
  m.config_fingerprint = 0x1234'5678'9abc'def0ull;
  m.workload_id = 0xfeed'beefull;
  m.population_size = 13760;
  m.workload_cycles = 982;
  m.workload_instructions = 238;
  m.window_begin = 1;
  m.window_end = 981;
  return m;
}

StoredRecord sample_record(u32 index) {
  StoredRecord sr;
  sr.index = index;
  sr.rec.fault.target = inject::FaultTarget::Latch;
  sr.rec.fault.index = 100 + index;
  sr.rec.fault.cycle = 10 + index;
  sr.rec.fault.mode =
      index % 2 ? inject::FaultMode::Sticky : inject::FaultMode::Toggle;
  sr.rec.fault.sticky_duration = index % 2 ? 5 : 0;
  sr.rec.fault.sticky_value = index % 3 == 0;
  sr.rec.fault.adjacent_bits = 1;
  sr.rec.outcome = static_cast<inject::Outcome>(index % inject::kNumOutcomes);
  sr.rec.unit = static_cast<netlist::Unit>(index % netlist::kNumUnits);
  sr.rec.type = static_cast<netlist::LatchType>(index % netlist::kNumLatchTypes);
  sr.rec.end_cycle = 500 + index;
  sr.rec.early_exited = index % 2 == 0;
  sr.rec.recoveries = index % 3;
  return sr;
}

void write_sample_store(const std::string& path, u32 n,
                        const CampaignMeta& meta) {
  StoreWriter w = StoreWriter::create(path, meta);
  for (u32 i = 0; i < n; ++i) w.append(sample_record(i));
  w.flush();
}

std::vector<u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<u8>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Codec, MetaRoundTrip) {
  const CampaignMeta m = sample_meta();
  const CampaignMeta back = decode_meta(encode_meta(m));
  EXPECT_TRUE(m.same_campaign(back));
}

TEST(Codec, MetricsFrameRoundTrip) {
  MetricsFrame mf;
  mf.worker = 3;
  mf.seq = 41;
  mf.snapshot.counters.emplace_back("injections", 1234);
  mf.snapshot.counters.emplace_back("outcome.Vanished", 1100);
  mf.snapshot.gauges.emplace_back("wall_seconds", 2.5);
  telemetry::MetricsSnapshot::Hist h;
  h.name = "injection_seconds";
  h.bounds = {0.001, 0.01, 0.1};
  h.buckets = {7, 5, 1, 0};
  h.count = 13;
  h.sum = 0.125;
  mf.snapshot.histograms.push_back(h);

  const MetricsFrame back = decode_metrics(encode_metrics(mf));
  EXPECT_EQ(back.worker, 3u);
  EXPECT_EQ(back.seq, 41u);
  EXPECT_EQ(back.snapshot.counter_value("injections"), 1234u);
  EXPECT_EQ(back.snapshot.counter_value("outcome.Vanished"), 1100u);
  EXPECT_DOUBLE_EQ(back.snapshot.gauge_value("wall_seconds"), 2.5);
  const telemetry::MetricsSnapshot::Hist* bh =
      back.snapshot.histogram("injection_seconds");
  ASSERT_NE(bh, nullptr);
  EXPECT_EQ(bh->bounds, h.bounds);
  EXPECT_EQ(bh->buckets, h.buckets);
  EXPECT_EQ(bh->count, 13u);
  EXPECT_DOUBLE_EQ(bh->sum, 0.125);

  // Canonical encoding: re-encoding the decoded frame is byte-identical.
  EXPECT_EQ(encode_metrics(back), encode_metrics(mf));
}

TEST(Store, MetricsFramesAreInvisibleToReadersAndMerge) {
  const CampaignMeta meta = sample_meta();
  TempFile plain("no_metrics"), with("with_metrics");
  write_sample_store(plain.path(), 5, meta);
  {
    StoreWriter w = StoreWriter::create(with.path(), meta);
    MetricsFrame mf;
    mf.worker = 0;
    for (u32 i = 0; i < 5; ++i) {
      w.append(sample_record(i));
      mf.seq = i;
      mf.snapshot.counters.assign({{"injections", u64{i} + 1}});
      w.append_metrics(mf);
    }
    w.flush();
  }

  // The 'M' frames made the file strictly larger...
  ASSERT_GT(slurp(with.path()).size(), slurp(plain.path()).size());
  // ...but a reader sees the identical record stream,
  const StoreContents a = read_store(plain.path());
  const StoreContents b = read_store(with.path());
  ASSERT_EQ(b.records.size(), a.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(b.records[i].index, a.records[i].index);
    EXPECT_EQ(b.records[i].rec.outcome, a.records[i].rec.outcome);
  }
  EXPECT_FALSE(b.torn_tail);
  // ...and canonical merge drops them: byte-identical outputs.
  TempFile canon_a("no_metrics_canon"), canon_b("with_metrics_canon");
  (void)merge_stores({plain.path()}, canon_a.path());
  (void)merge_stores({with.path()}, canon_b.path());
  EXPECT_EQ(slurp(canon_a.path()), slurp(canon_b.path()));
}

TEST(Codec, MetaRejectsTrailingBytes) {
  std::vector<u8> payload = encode_meta(sample_meta());
  payload.push_back(0);
  EXPECT_THROW((void)decode_meta(payload), StoreError);
}

TEST(Codec, RecordRoundTripAllFields) {
  for (u32 i = 0; i < 12; ++i) {
    const StoredRecord sr = sample_record(i);
    const StoredRecord back = decode_record(encode_record(sr));
    EXPECT_EQ(encode_record(back), encode_record(sr)) << "index " << i;
    EXPECT_EQ(back.index, sr.index);
    EXPECT_EQ(back.rec.fault.index, sr.rec.fault.index);
    EXPECT_EQ(back.rec.fault.mode, sr.rec.fault.mode);
    EXPECT_EQ(back.rec.outcome, sr.rec.outcome);
    EXPECT_EQ(back.rec.unit, sr.rec.unit);
    EXPECT_EQ(back.rec.type, sr.rec.type);
    EXPECT_EQ(back.rec.end_cycle, sr.rec.end_cycle);
    EXPECT_EQ(back.rec.early_exited, sr.rec.early_exited);
    EXPECT_EQ(back.rec.recoveries, sr.rec.recoveries);
  }
}

TEST(Codec, RecordRejectsOutOfRangeEnum) {
  std::vector<u8> payload = encode_record(sample_record(0));
  // The outcome byte sits at offset 28 (index u32, target u8, fault.index
  // u32, array_bit u64, cycle u64, mode u8, ...). Rather than hardcode the
  // offset, corrupt every byte position and require that decode either
  // round-trips to a valid record or throws — never reads out-of-range
  // enum values silently.
  for (std::size_t pos = 0; pos < payload.size(); ++pos) {
    std::vector<u8> bad = payload;
    bad[pos] = 0xFF;
    try {
      const StoredRecord r = decode_record(bad);
      EXPECT_LT(static_cast<std::size_t>(r.rec.outcome), inject::kNumOutcomes);
      EXPECT_LT(static_cast<std::size_t>(r.rec.unit), netlist::kNumUnits);
      EXPECT_LT(static_cast<std::size_t>(r.rec.type), netlist::kNumLatchTypes);
    } catch (const StoreError&) {
      // rejection is the expected behaviour for enum/flag bytes
    }
  }
}

TEST(Store, WriteReadRoundTrip) {
  TempFile f("roundtrip");
  const CampaignMeta meta = sample_meta();
  write_sample_store(f.path(), 7, meta);

  const StoreContents c = read_store(f.path());
  EXPECT_TRUE(c.meta.same_campaign(meta));
  ASSERT_EQ(c.records.size(), 7u);
  for (u32 i = 0; i < 7; ++i) {
    EXPECT_EQ(encode_record(c.records[i]), encode_record(sample_record(i)));
  }
  EXPECT_FALSE(c.torn_tail);
}

TEST(Store, MissingFileThrows) {
  EXPECT_THROW((void)read_store("/nonexistent/definitely_not_here.sfr"),
               StoreError);
}

TEST(Store, BadMagicThrows) {
  TempFile f("badmagic");
  write_sample_store(f.path(), 2, sample_meta());
  std::vector<u8> bytes = slurp(f.path());
  bytes[0] ^= 0x01;
  spit(f.path(), bytes);
  EXPECT_THROW((void)read_store(f.path()), StoreError);
}

TEST(Store, CrcCorruptionMidFileAlwaysThrows) {
  TempFile f("midcorrupt");
  write_sample_store(f.path(), 5, sample_meta());
  std::vector<u8> bytes = slurp(f.path());
  // Flip a byte in the middle of the file: this lands inside an early
  // record frame, with valid frames behind it — not a torn tail.
  bytes[bytes.size() / 2] ^= 0xFF;
  spit(f.path(), bytes);
  EXPECT_THROW((void)read_store(f.path()), StoreError);
  // Even the tolerant reader refuses: the corruption is not at the tail.
  EXPECT_THROW((void)read_store(f.path(), {.tolerate_torn_tail = true}),
               StoreError);
}

TEST(Store, TornTailToleratedAndTruncatable) {
  TempFile f("torn");
  write_sample_store(f.path(), 5, sample_meta());
  const std::vector<u8> whole = slurp(f.path());

  // Chop 3 bytes off the final frame: the classic killed-mid-append shape.
  std::vector<u8> torn(whole.begin(), whole.end() - 3);
  spit(f.path(), torn);

  // Strict read refuses.
  EXPECT_THROW((void)read_store(f.path()), StoreError);

  // Tolerant read returns the intact prefix and the safe truncation point.
  const StoreContents c = read_store(f.path(), {.tolerate_torn_tail = true});
  EXPECT_TRUE(c.torn_tail);
  ASSERT_EQ(c.records.size(), 4u);
  EXPECT_LT(c.valid_bytes, torn.size());

  // Truncating at valid_bytes yields a clean store again.
  std::filesystem::resize_file(f.path(), c.valid_bytes);
  const StoreContents clean = read_store(f.path());
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_EQ(clean.records.size(), 4u);
}

TEST(Store, CorruptTailByteIsTornNotFatal) {
  TempFile f("tailflip");
  write_sample_store(f.path(), 3, sample_meta());
  std::vector<u8> bytes = slurp(f.path());
  bytes.back() ^= 0xFF;  // last CRC byte — tail corruption
  spit(f.path(), bytes);
  EXPECT_THROW((void)read_store(f.path()), StoreError);
  const StoreContents c = read_store(f.path(), {.tolerate_torn_tail = true});
  EXPECT_TRUE(c.torn_tail);
  EXPECT_EQ(c.records.size(), 2u);
}

TEST(Codec, HeartbeatRoundTrip) {
  const HeartbeatFrame hb{3, 77, kHeartbeatIdle, 12};
  const HeartbeatFrame back = decode_heartbeat(encode_heartbeat(hb));
  EXPECT_EQ(back.worker, hb.worker);
  EXPECT_EQ(back.seq, hb.seq);
  EXPECT_EQ(back.index, hb.index);
  EXPECT_EQ(back.executed, hb.executed);
  std::vector<u8> bad = encode_heartbeat(hb);
  bad.push_back(0);
  EXPECT_THROW((void)decode_heartbeat(bad), StoreError);
}

TEST(Codec, AssignmentRoundTrip) {
  const AssignmentFrame as{2, 9, 1, 64};
  const AssignmentFrame back = decode_assignment(encode_assignment(as));
  EXPECT_EQ(back.worker, as.worker);
  EXPECT_EQ(back.shard, as.shard);
  EXPECT_EQ(back.attempt, as.attempt);
  EXPECT_EQ(back.count, as.count);
  std::vector<u8> bad = encode_assignment(as);
  bad.pop_back();
  EXPECT_THROW((void)decode_assignment(bad), StoreError);
}

TEST(Store, CommitMarkersInvisibleToRecordConsumers) {
  TempFile marked("markers"), plain("markerless");
  const CampaignMeta meta = sample_meta();
  {
    StoreWriter w = StoreWriter::create(marked.path(), meta,
                                        {.commit_markers = true});
    for (u32 i = 0; i < 5; ++i) w.append(sample_record(i));
    w.flush();
  }
  write_sample_store(plain.path(), 5, meta);

  // Same records through the reader, marker frames skipped like any other
  // unknown-to-the-consumer kind.
  const StoreContents c = read_store(marked.path());
  ASSERT_EQ(c.records.size(), 5u);
  EXPECT_FALSE(c.torn_tail);

  // Canonical merge strips markers: both producers collapse to identical
  // bytes — the farm/scheduler byte-identity bridge.
  TempFile ma("markers_canon"), mb("markerless_canon");
  (void)merge_stores({marked.path()}, ma.path());
  (void)merge_stores({plain.path()}, mb.path());
  EXPECT_EQ(slurp(ma.path()), slurp(mb.path()));
}

TEST(Store, TornFlushWindowDroppedWholly) {
  TempFile f("commitwin");
  const CampaignMeta meta = sample_meta();
  {
    StoreWriter w = StoreWriter::create(f.path(), meta,
                                        {.commit_markers = true});
    w.append(sample_record(0));
    w.flush();  // window 1 sealed
    w.append(sample_record(1));
    w.append(sample_record(2));
    w.flush();  // window 2 sealed
  }
  // Shear off exactly the final commit marker (empty payload: 1 kind +
  // 4 length + 4 CRC = 9 bytes). Records 1 and 2 remain as fully valid,
  // CRC-clean frames — but their flush window never committed.
  std::vector<u8> bytes = slurp(f.path());
  bytes.resize(bytes.size() - 9);
  spit(f.path(), bytes);

  const StoreContents c = read_store(f.path(), {.tolerate_torn_tail = true});
  EXPECT_TRUE(c.torn_tail);
  ASSERT_EQ(c.records.size(), 1u);  // the orphans are dropped wholly
  EXPECT_EQ(c.records[0].index, 0u);
  EXPECT_LT(c.valid_bytes, bytes.size());

  // Truncating at valid_bytes yields a clean marker store again.
  std::filesystem::resize_file(f.path(), c.valid_bytes);
  const StoreContents clean = read_store(f.path());
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_EQ(clean.records.size(), 1u);
}

TEST(Store, TornFlushWindowMixedKinds) {
  TempFile f("commitwin_mixed");
  const CampaignMeta meta = sample_meta();
  {
    StoreWriter w = StoreWriter::create(f.path(), meta,
                                        {.commit_markers = true});
    w.append(sample_record(0));
    w.flush();
    // A farm-shaped flush window: heartbeat, record, its footprint.
    w.append_heartbeat({1, 4, 1, 1});
    w.append(sample_record(1));
    inject::PropagationRecord fp;
    fp.index = 1;
    w.append_propagation(fp);
    w.flush();
  }
  std::vector<u8> bytes = slurp(f.path());
  bytes.resize(bytes.size() - 9);  // drop the window's commit marker
  spit(f.path(), bytes);

  // The orphan 'R' looks valid on its own, but its companion frames can no
  // longer be trusted complete: the whole window is truncated away.
  const StoreContents c = read_store(f.path(), {.tolerate_torn_tail = true});
  EXPECT_TRUE(c.torn_tail);
  ASSERT_EQ(c.records.size(), 1u);
  EXPECT_EQ(c.records[0].index, 0u);

  std::filesystem::resize_file(f.path(), c.valid_bytes);
  u64 fps = 0;
  (void)for_each_propagation(f.path(),
                             [&](const inject::PropagationRecord&) { ++fps; });
  EXPECT_EQ(fps, 0u);  // the footprint died with its window
}

TEST(Store, LegacyStoresKeepPerFrameTornSemantics) {
  // No markers anywhere: the tolerant reader must keep truncating to the
  // last complete *frame*, as before — old stores do not get stricter.
  TempFile f("legacy_torn");
  write_sample_store(f.path(), 3, sample_meta());
  std::vector<u8> bytes = slurp(f.path());
  bytes.resize(bytes.size() - 2);  // tear inside the final record frame
  spit(f.path(), bytes);
  const StoreContents c = read_store(f.path(), {.tolerate_torn_tail = true});
  EXPECT_TRUE(c.torn_tail);
  EXPECT_EQ(c.records.size(), 2u);  // per-frame, not whole-window
}

TEST(Store, AggregateMatchesRecords) {
  TempFile f("agg");
  write_sample_store(f.path(), 20, sample_meta());
  const auto [meta, agg] = aggregate_store(f.path());
  const StoreContents c = read_store(f.path());
  inject::CampaignAggregate manual;
  for (const auto& sr : c.records) manual.add(sr.rec);
  EXPECT_EQ(agg.total(), 20u);
  for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
    const auto oc = static_cast<inject::Outcome>(o);
    EXPECT_EQ(agg.counts.of(oc), manual.counts.of(oc));
  }
  for (std::size_t u = 0; u < netlist::kNumUnits; ++u) {
    EXPECT_EQ(agg.by_unit[u].total(), manual.by_unit[u].total());
  }
  for (std::size_t t = 0; t < netlist::kNumLatchTypes; ++t) {
    EXPECT_EQ(agg.by_type[t].total(), manual.by_type[t].total());
  }
}

TEST(Merge, ShardsFoldIntoCanonicalStore) {
  TempFile a("shard_a"), b("shard_b"), out("merged");
  const CampaignMeta meta = sample_meta();  // num_injections = 7
  {
    StoreWriter w = StoreWriter::create(a.path(), meta);
    // Out of order within the shard, plus one index shard B also has.
    for (const u32 i : {4u, 0u, 2u, 5u}) w.append(sample_record(i));
    w.flush();
  }
  {
    StoreWriter w = StoreWriter::create(b.path(), meta);
    for (const u32 i : {1u, 3u, 5u, 6u}) w.append(sample_record(i));
    w.flush();
  }
  const MergeSummary s = merge_stores({a.path(), b.path()}, out.path());
  EXPECT_EQ(s.inputs, 2u);
  EXPECT_EQ(s.records_read, 8u);
  EXPECT_EQ(s.records_written, 7u);
  EXPECT_EQ(s.duplicates, 1u);
  EXPECT_EQ(s.missing, 0u);

  const StoreContents c = read_store(out.path());
  ASSERT_EQ(c.records.size(), 7u);
  for (u32 i = 0; i < 7; ++i) EXPECT_EQ(c.records[i].index, i);

  // Canonical: merging in the other order gives the identical bytes.
  TempFile out2("merged2");
  (void)merge_stores({b.path(), a.path()}, out2.path());
  EXPECT_EQ(slurp(out.path()), slurp(out2.path()));
}

TEST(Merge, ReportsMissingIndices) {
  TempFile a("gap_a"), out("gap_out");
  {
    StoreWriter w = StoreWriter::create(a.path(), sample_meta());
    for (const u32 i : {0u, 2u, 6u}) w.append(sample_record(i));
    w.flush();
  }
  const MergeSummary s = merge_stores({a.path()}, out.path());
  EXPECT_EQ(s.records_written, 3u);
  EXPECT_EQ(s.missing, 4u);  // 1, 3, 4, 5 of 0..6
}

TEST(Merge, RejectsForeignCampaign) {
  TempFile a("mx_a"), b("mx_b"), out("mx_out");
  write_sample_store(a.path(), 2, sample_meta());
  CampaignMeta other = sample_meta();
  other.seed = 43;
  write_sample_store(b.path(), 2, other);
  EXPECT_THROW((void)merge_stores({a.path(), b.path()}, out.path()),
               StoreError);
}

TEST(Merge, RejectsDisagreeingShards) {
  TempFile a("dis_a"), b("dis_b"), out("dis_out");
  const CampaignMeta meta = sample_meta();
  write_sample_store(a.path(), 2, meta);
  {
    StoreWriter w = StoreWriter::create(b.path(), meta);
    StoredRecord lie = sample_record(1);
    lie.rec.end_cycle += 1;  // same index, different payload
    w.append(lie);
    w.flush();
  }
  EXPECT_THROW((void)merge_stores({a.path(), b.path()}, out.path()),
               StoreError);
}

// ---------------------------------------------------------------------------
// Scheduler: real campaigns through the store.

avp::Testcase small_testcase() {
  avp::TestcaseConfig cfg;
  cfg.seed = 11;
  cfg.num_instructions = 80;
  return avp::generate_testcase(cfg);
}

inject::CampaignConfig small_campaign(u32 n = 60) {
  inject::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = n;
  return cfg;
}

void expect_same_aggregate(const inject::CampaignAggregate& a,
                           const inject::CampaignAggregate& b) {
  for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
    const auto oc = static_cast<inject::Outcome>(o);
    EXPECT_EQ(a.counts.of(oc), b.counts.of(oc));
  }
  for (std::size_t u = 0; u < netlist::kNumUnits; ++u) {
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      const auto oc = static_cast<inject::Outcome>(o);
      EXPECT_EQ(a.by_unit[u].of(oc), b.by_unit[u].of(oc));
    }
  }
  for (std::size_t t = 0; t < netlist::kNumLatchTypes; ++t) {
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      const auto oc = static_cast<inject::Outcome>(o);
      EXPECT_EQ(a.by_type[t].of(oc), b.by_type[t].of(oc));
    }
  }
}

TEST(Scheduler, MatchesInMemoryCampaign) {
  TempFile f("sched_match");
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign();

  const inject::CampaignResult mem = inject::run_campaign(tc, cfg);
  sched::SchedulerConfig sc;
  sc.threads = 2;
  sc.shard_size = 16;
  const sched::ScheduledResult out =
      sched::run_campaign_to_store(tc, cfg, f.path(), sc);

  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.executed, cfg.num_injections);
  EXPECT_EQ(out.resumed, 0u);
  expect_same_aggregate(out.agg, mem.agg);

  // The aggregate is reconstructible purely from the file.
  const auto [meta, file_agg] = aggregate_store(f.path());
  EXPECT_TRUE(meta.same_campaign(out.meta));
  expect_same_aggregate(file_agg, mem.agg);
}

TEST(Scheduler, ProgressReachesTotal) {
  TempFile f("sched_progress");
  sched::SchedulerConfig sc;
  sc.threads = 2;
  sc.shard_size = 8;
  sc.flush_records = 4;
  u64 last_done = 0;
  u64 calls = 0;
  sc.on_progress = [&](const sched::Progress& p) {
    EXPECT_GE(p.done, last_done);  // monotone under the store lock
    EXPECT_EQ(p.total, 40u);
    last_done = p.done;
    ++calls;
  };
  const auto out = sched::run_campaign_to_store(
      small_testcase(), small_campaign(40), f.path(), sc);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(last_done, 40u);
  EXPECT_GE(calls, 40u / sc.flush_records);
}

TEST(Scheduler, ResumeEquivalence) {
  TempFile uninterrupted("resume_base"), interrupted("resume_cut");
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign();

  sched::SchedulerConfig sc;
  sc.threads = 2;
  sc.shard_size = 16;
  const auto full = sched::run_campaign_to_store(tc, cfg, uninterrupted.path(),
                                                 sc);
  ASSERT_TRUE(full.complete);

  // Interrupt after ~1/3 of the campaign...
  sched::SchedulerConfig cut = sc;
  cut.max_new_injections = cfg.num_injections / 3;
  const auto part =
      sched::run_campaign_to_store(tc, cfg, interrupted.path(), cut);
  EXPECT_FALSE(part.complete);
  EXPECT_LE(part.executed, cfg.num_injections / 3 + sc.shard_size);

  // ...then resume to completion.
  const auto rest = sched::run_campaign_to_store(tc, cfg, interrupted.path(),
                                                 sc, /*resume=*/true);
  EXPECT_TRUE(rest.complete);
  EXPECT_EQ(rest.resumed, part.executed);
  EXPECT_EQ(rest.executed + rest.resumed, u64{cfg.num_injections});
  expect_same_aggregate(rest.agg, full.agg);

  // The headline guarantee: canonical merges are byte-identical.
  TempFile ma("resume_merge_a"), mb("resume_merge_b");
  (void)merge_stores({uninterrupted.path()}, ma.path());
  (void)merge_stores({interrupted.path()}, mb.path());
  EXPECT_EQ(slurp(ma.path()), slurp(mb.path()));
}

TEST(Scheduler, ResumeAfterTornTail) {
  TempFile f("resume_torn");
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(30);

  sched::SchedulerConfig cut;
  cut.threads = 1;
  cut.shard_size = 8;
  cut.max_new_injections = 16;
  (void)sched::run_campaign_to_store(tc, cfg, f.path(), cut);

  // Simulate the writer dying mid-append: shear bytes off the tail.
  std::vector<u8> bytes = slurp(f.path());
  bytes.resize(bytes.size() - 5);
  spit(f.path(), bytes);

  sched::SchedulerConfig sc;
  sc.threads = 2;
  const auto out =
      sched::run_campaign_to_store(tc, cfg, f.path(), sc, /*resume=*/true);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.executed + out.resumed, 30u);

  // The repaired store holds exactly the campaign, cleanly framed.
  const StoreContents c = read_store(f.path());
  EXPECT_EQ(c.records.size(), 30u);

  // And equals the uninterrupted campaign after canonicalisation.
  TempFile base("torn_base"), ma("torn_ma"), mb("torn_mb");
  (void)sched::run_campaign_to_store(tc, cfg, base.path(), sc);
  (void)merge_stores({base.path()}, ma.path());
  (void)merge_stores({f.path()}, mb.path());
  EXPECT_EQ(slurp(ma.path()), slurp(mb.path()));
}

TEST(Scheduler, ResumeRefusesForeignStore) {
  TempFile f("resume_refuse");
  const avp::Testcase tc = small_testcase();
  (void)sched::run_campaign_to_store(tc, small_campaign(20), f.path(), {});

  // Different seed → different fault list → refuse.
  inject::CampaignConfig other = small_campaign(20);
  other.seed = 8;
  EXPECT_THROW((void)sched::run_campaign_to_store(tc, other, f.path(), {},
                                                  /*resume=*/true),
               StoreError);

  // Different campaign size → refuse.
  EXPECT_THROW((void)sched::run_campaign_to_store(tc, small_campaign(21),
                                                  f.path(), {},
                                                  /*resume=*/true),
               StoreError);
}

TEST(Scheduler, ResumeOfCompleteStoreIsNoOp) {
  TempFile f("resume_noop");
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig cfg = small_campaign(20);
  (void)sched::run_campaign_to_store(tc, cfg, f.path(), {});
  const std::vector<u8> before = slurp(f.path());

  const auto again =
      sched::run_campaign_to_store(tc, cfg, f.path(), {}, /*resume=*/true);
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(again.resumed, 20u);
  EXPECT_EQ(slurp(f.path()), before);
}

TEST(Scheduler, FingerprintSensitivity) {
  const avp::Testcase tc = small_testcase();
  const inject::CampaignConfig a = small_campaign();
  const inject::CampaignPlan plan_a = inject::plan_campaign(tc, a);
  const u64 fp_a = sched::campaign_fingerprint(a, plan_a);

  // Same inputs → same fingerprint (pure function).
  EXPECT_EQ(sched::campaign_fingerprint(a, inject::plan_campaign(tc, a)),
            fp_a);

  // A config change that alters outcome classification changes it.
  inject::CampaignConfig b = a;
  b.run.hang_margin *= 2;
  EXPECT_NE(sched::campaign_fingerprint(b, inject::plan_campaign(tc, b)),
            fp_a);

  // A population change changes it.
  inject::CampaignConfig c = a;
  c.filter = [](const netlist::LatchMeta& m) {
    return m.unit == netlist::Unit::FXU;
  };
  EXPECT_NE(sched::campaign_fingerprint(c, inject::plan_campaign(tc, c)),
            fp_a);
}

TEST(Scheduler, WorkloadIdTracksProgram) {
  avp::TestcaseConfig a;
  a.seed = 11;
  a.num_instructions = 80;
  avp::TestcaseConfig b = a;
  b.seed = 12;
  EXPECT_EQ(sched::workload_id(avp::generate_testcase(a)),
            sched::workload_id(avp::generate_testcase(a)));
  EXPECT_NE(sched::workload_id(avp::generate_testcase(a)),
            sched::workload_id(avp::generate_testcase(b)));
}

TEST(Progress, RateClampsUntilFirstRealSample) {
  // The first progress report of a run fires before any injection has
  // completed (executed == 0, wall ~ 0): rate and ETA must be "not yet",
  // never 0/inf/nan leaking into the live line.
  sched::Progress p;
  p.total = 100;
  EXPECT_FALSE(p.rate_per_s().has_value());
  EXPECT_FALSE(p.eta_seconds().has_value());

  // Executed work with a zero-width wall window (clock resolution) is still
  // not a measurable rate.
  p.executed = 8;
  p.wall_seconds = 0.0;
  EXPECT_FALSE(p.rate_per_s().has_value());
  EXPECT_FALSE(p.eta_seconds().has_value());

  // A denormal window would divide to inf — clamped too.
  p.wall_seconds = 4.9e-324;
  EXPECT_FALSE(p.rate_per_s().has_value());

  // First real sample: both become available and consistent.
  p.done = 8;
  p.wall_seconds = 2.0;
  ASSERT_TRUE(p.rate_per_s().has_value());
  EXPECT_DOUBLE_EQ(*p.rate_per_s(), 4.0);
  ASSERT_TRUE(p.eta_seconds().has_value());
  EXPECT_DOUBLE_EQ(*p.eta_seconds(), 23.0);

  // Resume overshoot (done > total, e.g. a re-grown store): no ETA.
  p.done = 101;
  EXPECT_TRUE(p.rate_per_s().has_value());
  EXPECT_FALSE(p.eta_seconds().has_value());
}

}  // namespace
}  // namespace sfi::store
