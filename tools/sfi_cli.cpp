// sfi — the command-line front end of the Statistical Fault Injection
// framework.
//
//   sfi inventory                          latch/array population report
//   sfi campaign [options]                 run a fault-injection campaign
//   sfi worker   --shard-store FILE        farm worker (spawned by campaign
//                                          --farm; reads stdin assignments)
//   sfi report   --from FILE               regenerate tables from a store
//   sfi explain  --from FILE               fault-propagation forensics report
//   sfi merge    --out FILE IN...          merge campaign store shards
//   sfi beam     [options]                 run a simulated beam exposure
//   sfi trace    --latch NAME [options]    trace one fault cause→effect
//   sfi trace    STORE.sfr [--out FILE]    stitch a campaign's distributed
//                                          span plane into Perfetto JSON
//   sfi mix      [options]                 AVP instruction mix & CPI
//   sfi derate   [options]                 derating factors & FIT budget
//   sfi serve    --state-dir DIR           multi-tenant campaign daemon
//   sfi submit   --connect ADDR [options]  submit a campaign to a daemon
//   sfi status   --connect ADDR            daemon + campaign status
//   sfi watch    --connect ADDR --id N     stream a campaign's events
//   sfi shutdown --connect ADDR            graceful daemon stop
//   sfi top      --http ADDR               live per-campaign fleet table
//
// Common options:
//   --seed N              experiment seed               (default 42)
//   --testcase-seed N     AVP workload seed             (default 2026)
//   --instructions N      AVP testcase length           (default 160)
// Campaign/beam options:
//   --n N                 injections / beam events      (default 1000)
//   --threads N           worker threads                (default: hw)
//   --unit U              restrict to one unit (IFU..RUT, Core)
//   --type T              restrict to one latch type (FUNC/REGFILE/MODE/GPTR)
//   --raw                 mask all core checkers (Table 3 "Raw")
//   --sticky D            sticky faults of D cycles instead of toggles
//   --ckpt-interval N     reference-run checkpoint every N cycles so each
//                         injection warm-starts instead of replaying from
//                         cycle 0 (0 = off; default: auto from window size
//                         and the memory budget). Never changes outcomes.
//   --ckpt-mem MIB        checkpoint memory budget in MiB (default 64)
//   --engine E            injection engine: scalar (one in-flight injection
//                         per worker) or lanes (N in-flight injections as
//                         XOR-diff lanes over one shared reference replay;
//                         several times faster on checker-on campaigns —
//                         see bench/ablation_lane_engine). Records are
//                         byte-identical across engines (CI-gated), so
//                         stores resume/merge across engine choices freely
//   --lanes N             max in-flight injections per lane-engine sweep
//                         (default 64; more lanes amortize the reference
//                         replay further, diminishing past ~256)
// Durable campaign options (scheduler + store):
//   --out FILE.sfr        stream records to a durable campaign store
//   --resume              continue an interrupted --out campaign; already
//                         persisted injections are skipped exactly
//   --shard-size N        injections per scheduler shard (default 64)
//   --flush N             records buffered per worker between store
//                         flushes (default 32)
//   --max-new N           stop after N new injections (simulates an
//                         interrupted run; finish later with --resume)
//   SIGINT/SIGTERM        stop dispatching, flush committed work, close the
//                         store cleanly and print the --resume hint (exit
//                         130); a second signal kills immediately
// Farm options (campaign; requires --out — workers stream per-worker shard
// stores which the coordinator merges byte-identically to a 1-process run):
//   --workers N           spawn N supervised local worker processes
//   --farm HOSTS.txt      spawn workers per hosts file (`host [slots]`;
//                         non-local hosts via ssh + shared filesystem)
//   --watchdog SECS       kill a worker with no committed frame for SECS
//                         (default 30); unfinished work retries elsewhere
//   --strikes K           reproducible worker-killer injections get K tries
//                         before being recorded as HarnessFatal (default 3)
//   --keep-shards         keep per-worker shard files after the merge
//   --sabotage-crash I    test hook: worker SIGKILLs itself at index I
//                         (attempt 0 only, so the retry succeeds)
//   --sabotage-wedge I    test hook: worker spins forever at index I
//   --sabotage-wedge-once wedge only on attempt 0 (watchdog drill)
//   --metrics-every N     workers serialize a cumulative metrics snapshot
//                         ('M' frame) into their shard store every N
//                         injections (default 32 — same as sfi serve;
//                         0 = off); the coordinator folds them into its
//                         fleet metrics view. Observability-only: the
//                         canonical merge drops 'M' frames, so the merged
//                         store is byte-identical either way
//   --trace-spans         distributed trace: every process records spans
//                         ('S' frames) — dispatch, retries, per-shard
//                         execution, tail-latency exemplar injections —
//                         teed into a <out>.trace.sfr sidecar that
//                         `sfi trace <out>.sfr` stitches into one
//                         Perfetto timeline. Merge drops 'S' frames, so
//                         the canonical store stays byte-identical
//   --postmortem FILE     crash flight recorder: keep recent telemetry
//                         lines in a fixed in-memory ring and dump them to
//                         FILE on a fatal signal; in farm mode also dumped
//                         after every supervision failure (worker crash,
//                         watchdog kill, strikeout)
// Worker options (`sfi worker`; campaign flags same as the coordinator):
//   --shard-store FILE    shard store this worker appends to (required)
//   --worker-id N         id stamped into heartbeat/assignment frames
//   --metrics-every N     as above (appended by the coordinator)
// Propagation forensics (campaign; records/store R frames stay byte-identical
// with these on — footprints are extra 'P' frames older readers skip):
//   --footprint           trace infection footprints: every non-Vanished
//                         injection is re-run from a pre-fault snapshot and
//                         its state diffed against the reference trace at
//                         exponentially spaced cycles after the flip
//   --footprint-sample N  also trace every Nth Vanished injection
//                         (default 32; 0 = never trace Vanished)
//   --footprint-window N  cap traced cycles after the flip for the bulk
//                         classes Vanished/Corrected (default 512; escape
//                         outcomes always get the full 4096-cycle window)
//   --footprint-every-cycle
//                         diff at every post-flip cycle instead of
//                         exponentially (ablation/debug; implies --footprint)
// Explain options:
//   --from FILE.sfr       store to read 'P' frames from
//   --json FILE           also write the full forensics report as JSON
//   --csv FILE            also write one CSV row per traced injection
// Telemetry options (campaign and beam; strictly read-only — records and
// store bytes are identical with or without these):
//   --metrics-out FILE    write the metrics registry (counters, gauges,
//                         phase/latency histograms) as JSON at the end
//   --events-out FILE     stream a structured JSONL event log (campaign
//                         lifecycle, shard dispatch, checkpoint saves,
//                         sampled per-injection records)
//   --chrome-trace FILE   write a Chrome-trace/Perfetto timeline (one track
//                         per worker, shard spans, per-injection phase
//                         slices); load it in chrome://tracing
//   --telemetry-sample N  keep every Nth per-injection event/trace slice
//                         (default 1 = all; lifecycle events are never
//                         sampled away)
//   --progress            live one-line progress (rate, ETA, outcome
//                         tallies) on stderr
// Serve options (`sfi serve`):
//   --state-dir DIR       durable home for campaign stores + manifests
//                         (required; a restarted daemon re-adopts it and
//                         resumes incomplete campaigns)
//   --listen ADDR         unix:PATH, tcp:HOST:PORT, or tcp:PORT
//                         (default unix:<state-dir>/sfi.sock)
//   --max-active N        campaigns running concurrently (default 2);
//                         queued submissions are admitted fair-share by
//                         tenant spend (price = injections x instructions)
//   --campaign-threads N  scheduler threads for submissions that leave
//                         --threads 0 (default 1: deterministic stop points)
//   --http ADDR           HTTP observability listener (tcp:HOST:PORT or
//                         tcp:PORT; tcp:0 picks a free port): GET /metrics
//                         (Prometheus text format: fleet-wide counters,
//                         histograms with p50/p95/p99, live per-stratum
//                         early-stop gauges), /healthz and /campaigns
//                         (JSON), /trace?campaign=N (live Trace Event JSON
//                         of the campaign's distributed span plane)
//   --metrics-every N     farm-worker snapshot cadence for daemon campaigns
//                         while --http is on (default 32; 0 = off)
// Top options (`sfi top`; a terminal dashboard over the HTTP plane):
//   --http ADDR           daemon HTTP address to poll (required)
//   --interval SECS       refresh period (default 2)
//   --once                print one table and exit (no screen clearing)
//   --json                machine-readable: one JSON object per refresh
//                         (campaigns plus computed rate/ETA; no screen
//                         control — pipe it to jq or a logger)
// Client options (`sfi submit` / `status` / `watch` / `shutdown`):
//   --connect ADDR        daemon address (same grammar as --listen)
//   --tenant T            fair-share accounting bucket (default "default")
//   --confidence C        interval confidence in (0,1)  (default 0.95; also
//                         sets the CI level campaign/report tables print)
//   --half-width W        early-stop target: stop once every stratum's
//                         Wilson half-width is <= W     (default 0.02)
//   --stratify-unit       require per-unit strata to meet the target too
//   --wait                submit, then stream events until the campaign ends
//   --json                status: raw JSON reply instead of the table
//   --id N                watch: campaign id
// Trace options (single-fault mode):
//   --latch NAME[:BIT]    latch (by hierarchical name) to flip
//   --cycle C             injection cycle               (default 30)
// Trace options (stitch mode: `sfi trace STORE.sfr`):
//   --out FILE.json       stitched Trace Event JSON     (default trace.json)
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "avp/testgen.hpp"
#include "beam/beam.hpp"
#include "core/config.hpp"
#include "farm/farm.hpp"
#include "farm/process.hpp"
#include "report/table.hpp"
#include "sfi/propagation.hpp"
#include "telemetry/json.hpp"
#include "sched/scheduler.hpp"
#include "serve/daemon.hpp"
#include "stats/intervals.hpp"
#include "sfi/campaign.hpp"
#include "sfi/derating.hpp"
#include "sfi/engine.hpp"
#include "sfi/tracer.hpp"
#include "store/merge.hpp"
#include "store/reader.hpp"
#include "store/trace_stitch.hpp"
#include "telemetry/flight_recorder.hpp"
#include "workload/spec_profiles.hpp"

namespace {

using namespace sfi;

/// A bad command line (unknown value, missing argument). Exits with 2, like
/// usage(), rather than 1 (runtime failure).
struct CliError : std::runtime_error {
  explicit CliError(const std::string& what) : std::runtime_error(what) {}
};

/// Strict unsigned parse (base prefix honoured): the whole token must be a
/// non-negative integer that fits u64. std::stoull alone would accept
/// "12abc", wrap "-3" around, and throw bare std::invalid_argument at the
/// user on "abc".
u64 parse_u64(const std::string& key, const std::string& value) {
  const auto fail = [&](const char* why) -> u64 {
    throw CliError("invalid value for --" + key + ": '" + value + "' (" +
                     why + ")");
  };
  if (value.empty()) return fail("expected an unsigned integer");
  if (!std::isdigit(static_cast<unsigned char>(value.front()))) {
    return fail("expected an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 0);
  if (errno == ERANGE) return fail("out of range for a 64-bit value");
  if (end != value.c_str() + value.size()) {
    return fail("trailing characters after the number");
  }
  return v;
}

/// Strict floating-point parse: the whole token must be a finite number.
double parse_f64(const std::string& key, const std::string& value) {
  const auto fail = [&](const char* why) -> double {
    throw CliError("invalid value for --" + key + ": '" + value + "' (" +
                   why + ")");
  };
  if (value.empty()) return fail("expected a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (errno == ERANGE) return fail("out of range");
  if (end != value.c_str() + value.size()) {
    return fail("trailing characters after the number");
  }
  return v;
}

/// Options that are bare flags (consume no value).
const std::set<std::string>& flag_options() {
  static const std::set<std::string> flags = {
      "raw",       "resume",      "progress",
      "footprint", "footprint-every-cycle",
      "keep-shards", "sabotage-wedge-once",
      "wait", "json", "stratify-unit", "once", "trace-spans"};
  return flags;
}

struct Args {
  std::string command;
  std::map<std::string, std::string> opts;
  std::set<std::string> flags;
  std::vector<std::string> positional;

  [[nodiscard]] u64 num(const std::string& key, u64 dflt) const {
    const auto it = opts.find(key);
    return it == opts.end() ? dflt : parse_u64(key, it->second);
  }
  /// num() for options that land in a u32 destination: values above 2^32-1
  /// are a usage error, not a silent wrap (--n 4294967297 used to become 1).
  [[nodiscard]] u32 num_u32(const std::string& key, u32 dflt) const {
    const u64 v = num(key, dflt);
    if (v > std::numeric_limits<u32>::max()) {
      throw CliError("invalid value for --" + key + ": '" +
                     opts.at(key) + "' (exceeds the 32-bit range)");
    }
    return static_cast<u32>(v);
  }
  [[nodiscard]] double fnum(const std::string& key, double dflt) const {
    const auto it = opts.find(key);
    return it == opts.end() ? dflt : parse_f64(key, it->second);
  }
  [[nodiscard]] std::optional<std::string> str(const std::string& key) const {
    const auto it = opts.find(key);
    if (it == opts.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return flags.count(key) != 0;
  }
};

int usage() {
  std::cout <<
      R"(usage: sfi <command> [options]
commands:
  inventory   latch/array population report
  campaign    run a statistical fault-injection campaign
              (--out FILE.sfr streams records to a durable store; --resume
               continues an interrupted one exactly; --workers N / --farm
               HOSTS.txt run it on supervised worker processes)
  worker      farm worker process (spawned by campaign --farm; reads
              shard assignments on stdin, answers via --shard-store)
  report      regenerate campaign tables from a store (--from FILE.sfr),
              no re-simulation
  explain     fault-propagation forensics from a store's footprints
              (--from FILE.sfr [--json FILE] [--csv FILE]; needs a campaign
               run with --footprint)
  merge       merge store shards: sfi merge --out MERGED.sfr SHARD...
  beam        run a simulated proton-beam exposure
  trace       trace one injected fault from cause to effect (--latch), or
              stitch a campaign's distributed span plane into one Perfetto
              timeline (sfi trace STORE.sfr [--out trace.json])
  mix         AVP instruction mix and CPI report
  derate      derating factors & chip FIT budget from a campaign
  serve       multi-tenant campaign daemon with adaptive early stop
              (--state-dir DIR [--listen unix:PATH|tcp:HOST:PORT]
               [--max-active N]); campaigns stop as soon as every stratum's
              Wilson interval is under the submitted half-width target
  submit      submit a campaign to a daemon (--connect ADDR [--tenant T]
              [--n N] [--confidence C] [--half-width W] [--stratify-unit]
              [--workers N] [--engine scalar|lanes] [--lanes N] [--wait])
  status      one-line-per-campaign daemon status (--connect ADDR [--json])
  watch       stream a campaign's JSONL event log (--connect ADDR --id N)
  shutdown    ask a daemon to stop (running campaigns stay resumable)
  top         live refreshing per-campaign table over the daemon's HTTP
              plane (--http ADDR [--interval SECS] [--once]); the same
              endpoint Prometheus scrapes at /metrics
telemetry (campaign/beam): --metrics-out FILE, --events-out FILE.jsonl,
  --chrome-trace FILE.json, --telemetry-sample N, --progress
run `head -60 tools/sfi_cli.cpp` for the full option list.
)";
  return 2;
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) return a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      a.positional.push_back(key);
      continue;
    }
    key = key.substr(2);
    if (flag_options().count(key) != 0) {
      a.flags.insert(key);
    } else if (i + 1 < argc) {
      a.opts[key] = argv[++i];
    } else {
      throw CliError("option --" + key + " expects a value");
    }
  }
  return a;
}

avp::Testcase make_testcase(const Args& a) {
  avp::TestcaseConfig cfg;
  cfg.seed = a.num("testcase-seed", 2026);
  cfg.num_instructions = a.num_u32("instructions", 160);
  return avp::generate_testcase(cfg);
}

std::optional<netlist::Unit> parse_unit(const std::string& s) {
  for (const auto u : netlist::kAllUnits) {
    if (s == to_string(u)) return u;
  }
  return std::nullopt;
}

std::optional<netlist::LatchType> parse_type(const std::string& s) {
  for (const auto t : netlist::kAllLatchTypes) {
    if (s == to_string(t)) return t;
  }
  return std::nullopt;
}

/// Confidence level for every interval a command prints (default 95%).
double confidence_from(const Args& a) {
  const double c = a.fnum("confidence", stats::kDefaultConfidence);
  if (!(c > 0.0 && c < 1.0)) {
    throw CliError("--confidence must be in (0,1)");
  }
  return c;
}

std::string ci_label(double confidence) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g%% CI", confidence * 100.0);
  return buf;
}

void print_outcomes(const inject::OutcomeCounts& counts, double confidence) {
  const double z = stats::z_for_confidence(confidence);
  report::Table t({"outcome", "count", "fraction", ci_label(confidence)});
  for (const auto o : inject::kAllOutcomes) {
    const auto iv = counts.interval(o, z);
    t.add_row({std::string(to_string(o)), report::Table::count(counts.of(o)),
               report::Table::pct(counts.fraction(o)),
               "[" + report::Table::pct(iv.low) + ", " +
                   report::Table::pct(iv.high) + "]"});
  }
  std::cout << t.to_string();
}

void print_unit_table(const inject::CampaignAggregate& agg) {
  std::cout << report::section("by unit");
  report::Table t({"unit", "flips", "vanished", "corrected", "severe"});
  for (const auto u : netlist::kAllUnits) {
    const auto& c = agg.by_unit[static_cast<std::size_t>(u)];
    if (c.total() == 0) continue;
    t.add_row({std::string(to_string(u)), report::Table::count(c.total()),
               report::Table::pct(c.fraction(inject::Outcome::Vanished)),
               report::Table::pct(c.fraction(inject::Outcome::Corrected)),
               report::Table::pct(c.fraction(inject::Outcome::Hang) +
                                  c.fraction(inject::Outcome::Checkstop) +
                                  c.fraction(inject::Outcome::BadArchState))});
  }
  std::cout << t.to_string();
}

/// The tables every campaign view shares — live run, scheduled run, and
/// store replay print through this one path, which is what makes
/// `sfi report --from` reproduce the live tables exactly.
void print_campaign_tables(const inject::CampaignAggregate& agg,
                           double confidence) {
  print_outcomes(agg.counts, confidence);
  print_unit_table(agg);
}

/// Campaign throughput summary: wall time, simulation rate, and what the
/// interval-checkpoint store bought (cycles never replayed).
void print_throughput(double wall_seconds, u64 cycles_evaluated,
                      u64 cycles_fast_forwarded, u64 checkpoint_ops,
                      std::size_t checkpoints, u64 checkpoint_bytes) {
  const double rate = wall_seconds > 0.0
                          ? static_cast<double>(cycles_evaluated) / wall_seconds
                          : 0.0;
  std::cout << "throughput: " << report::Table::num(wall_seconds, 2)
            << " s wall; " << cycles_evaluated << " cycles evaluated ("
            << report::Table::num(rate, 0) << " cycles/s); "
            << cycles_fast_forwarded << " cycles fast-forwarded; "
            << checkpoints << " checkpoints ("
            << report::Table::num(
                   static_cast<double>(checkpoint_bytes) / (1024.0 * 1024.0),
                   2)
            << " MiB resident; " << checkpoint_ops << " checkpoint ops)\n";
}

int cmd_inventory() {
  core::Pearl6Model model;
  const auto& reg = model.registry();

  std::cout << report::section("latch inventory");
  report::Table by_unit({"unit", "latch bits", "share"});
  const auto units = reg.latch_count_by_unit();
  for (const auto u : netlist::kAllUnits) {
    const auto idx = static_cast<std::size_t>(u);
    by_unit.add_row({std::string(to_string(u)),
                     report::Table::count(units[idx]),
                     report::Table::pct(static_cast<double>(units[idx]) /
                                        reg.num_latches())});
  }
  std::cout << by_unit.to_string() << "\n";

  report::Table by_type({"latch type", "latch bits", "share"});
  const auto types = reg.latch_count_by_type();
  for (const auto t : netlist::kAllLatchTypes) {
    const auto idx = static_cast<std::size_t>(t);
    by_type.add_row({std::string(to_string(t)),
                     report::Table::count(types[idx]),
                     report::Table::pct(static_cast<double>(types[idx]) /
                                        reg.num_latches())});
  }
  std::cout << by_type.to_string() << "\n";

  std::cout << "total injectable latch bits: " << reg.num_latches() << " in "
            << reg.num_fields() << " named fields\n";
  std::cout << "protected array bits (beam targets): "
            << model.arrays().total_storage_bits() << " across "
            << model.arrays().num_arrays() << " arrays\n";
  std::cout << "main-store storage bits (periphery targets): "
            << model.memory().storage_bits() << "\n";
  return 0;
}

/// Telemetry sinks requested on the command line. Owns the facade; wire
/// `sinks.tel.get()` into the config, run, then call `write_outputs()`.
struct TelemetrySinks {
  std::unique_ptr<inject::CampaignTelemetry> tel;
  std::optional<std::string> metrics_out;
  std::optional<std::string> trace_out;
  bool progress = false;

  [[nodiscard]] inject::CampaignTelemetry* get() const { return tel.get(); }

  void write_outputs() const {
    if (!tel) return;
    if (metrics_out) {
      tel->write_metrics(*metrics_out);
      std::cout << "metrics: " << *metrics_out << "\n";
    }
    if (trace_out) {
      tel->write_chrome_trace(*trace_out);
      std::cout << "chrome trace: " << *trace_out
                << " (load in chrome://tracing)\n";
    }
  }
};

TelemetrySinks make_telemetry(const Args& a) {
  TelemetrySinks s;
  s.metrics_out = a.str("metrics-out");
  s.trace_out = a.str("chrome-trace");
  s.progress = a.flag("progress");
  const auto events_out = a.str("events-out");
  // Parse before the early return: a malformed value must error even when
  // no sink is enabled.
  const auto sample = a.num_u32("telemetry-sample", 1);
  // --postmortem implies a telemetry facade: the flight-recorder ring only
  // holds lines the telemetry layer emits, so without one the dump would
  // always be empty.
  const bool postmortem = a.str("postmortem").has_value();
  // --trace-spans needs the facade too: the span plane hangs off
  // CampaignTelemetry (the farm coordinator enables it there).
  const bool trace_spans = a.flag("trace-spans");
  if (!s.metrics_out && !s.trace_out && !events_out && !s.progress &&
      !postmortem && !trace_spans) {
    return s;
  }
  inject::TelemetryConfig tc;
  tc.event_sample = sample;
  tc.slice_sample = sample;
  s.tel = std::make_unique<inject::CampaignTelemetry>(tc);
  if (events_out) s.tel->open_event_log(*events_out);
  if (s.trace_out) s.tel->enable_chrome_trace();
  return s;
}

inject::CampaignConfig campaign_config(const Args& a, u32 default_n) {
  inject::CampaignConfig cfg;
  cfg.seed = a.num("seed", 42);
  cfg.num_injections = a.num_u32("n", default_n);
  cfg.threads = a.num_u32("threads", 0);
  cfg.core.checkers_enabled = !a.flag("raw");
  cfg.ckpt_interval = a.num("ckpt-interval", emu::kCkptAuto);
  cfg.ckpt_memory_budget = a.num("ckpt-mem", 64) << 20;
  if (const auto d = a.num("sticky", 0); d != 0) {
    cfg.mode = inject::FaultMode::Sticky;
    cfg.sticky_duration = d;
  }
  cfg.footprint.enabled =
      a.flag("footprint") || a.flag("footprint-every-cycle");
  cfg.footprint.vanished_sample =
      a.num_u32("footprint-sample", 32);
  cfg.footprint.max_trace_cycles = a.num("footprint-window", 512);
  if (a.flag("footprint-every-cycle")) {
    cfg.footprint.sampling = inject::FootprintSampling::EveryCycle;
  }
  if (const auto e = a.str("engine")) {
    const auto kind = inject::parse_engine(*e);
    if (!kind) {
      throw CliError("unknown engine '" + *e + "' (expected scalar or lanes)");
    }
    cfg.engine = *kind;
  }
  cfg.lanes = a.num_u32("lanes", cfg.lanes);
  if (cfg.lanes == 0) throw CliError("--lanes must be >= 1");
  if (const auto u = a.str("unit")) {
    const auto unit = parse_unit(*u);
    if (!unit) throw CliError("unknown unit " + *u);
    cfg.filter = [unit](const netlist::LatchMeta& m) {
      return m.unit == *unit;
    };
  } else if (const auto t = a.str("type")) {
    const auto type = parse_type(*t);
    if (!type) throw CliError("unknown latch type " + *t);
    cfg.filter = [type](const netlist::LatchMeta& m) {
      return m.type == *type;
    };
  }
  return cfg;
}

/// Cooperative-stop latch for durable campaigns. The first SIGINT/SIGTERM
/// flips the flag and lets the scheduler/farm wind down cleanly (flush, close
/// store, print the --resume hint); a second one restores the default
/// disposition and re-raises, for when winding down is itself stuck.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void on_stop_signal(int sig) {
  if (g_stop_requested != 0) {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  g_stop_requested = 1;
}

void install_stop_handler() {
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
}

/// " (N inj/s, ETA Ns)" for live progress lines, from the clamped
/// sched::Progress accessors: em-dash placeholders until the rate window is
/// real (the first report of a run fires before any injection completes).
std::string progress_rate_suffix(const sched::Progress& p) {
  const auto rate = p.rate_per_s();
  if (!rate) return " (— inj/s, ETA —)";
  char buf[64];
  if (const auto eta = p.eta_seconds()) {
    std::snprintf(buf, sizeof buf, " (%.0f inj/s, ETA %.0fs)", *rate, *eta);
  } else {
    std::snprintf(buf, sizeof buf, " (%.0f inj/s, ETA —)", *rate);
  }
  return buf;
}

void print_resume_hint(const std::string& out) {
  std::cout << "interrupted — committed records are durable; finish with:\n"
            << "  sfi campaign --out " << out
            << " --resume [same campaign options]\n";
}

/// --postmortem FILE: enable the global crash flight recorder (telemetry
/// lines tee into a fixed in-memory ring) and arm fatal-signal dumps to
/// FILE. Returns the path, empty when not requested. Observability-only.
std::string postmortem_from_args(const Args& a) {
  const auto path = a.str("postmortem");
  if (!path) return "";
  telemetry::FlightRecorder::global().enable(2048);
  telemetry::FlightRecorder::arm_signals(*path);
  return *path;
}

farm::SabotageConfig sabotage_from_args(const Args& a) {
  farm::SabotageConfig s;
  if (a.opts.count("sabotage-crash") != 0) {
    s.crash_index = a.num_u32("sabotage-crash", 0);
  }
  if (a.opts.count("sabotage-wedge") != 0) {
    s.wedge_index = a.num_u32("sabotage-wedge", 0);
  }
  s.wedge_once = a.flag("sabotage-wedge-once");
  return s;
}

/// Rebuild the campaign-defining flags for an exec-mode worker command line.
/// Whitelisted: everything that feeds make_testcase/campaign_config (plus the
/// sabotage hooks, which are attempt-gated and so safe on every worker);
/// coordinator-only options (--out, --workers, telemetry sinks, ...) and
/// --threads (workers are single-threaded by construction) stay behind.
std::vector<std::string> worker_command_from_args(const Args& a) {
  static const std::set<std::string> keep = {
      "seed",          "testcase-seed",    "instructions",
      "n",             "unit",             "type",
      "sticky",        "ckpt-interval",    "ckpt-mem",
      "footprint-sample", "footprint-window",
      "engine",        "lanes",
      "sabotage-crash", "sabotage-wedge",  "metrics-every"};
  static const std::set<std::string> keep_flags = {
      "raw", "footprint", "footprint-every-cycle", "sabotage-wedge-once"};
  std::vector<std::string> cmd = {farm::self_exe(), "worker"};
  for (const auto& [key, value] : a.opts) {
    if (keep.count(key) == 0) continue;
    cmd.push_back("--" + key);
    cmd.push_back(value);
  }
  for (const auto& flag : a.flags) {
    if (keep_flags.count(flag) != 0) cmd.push_back("--" + flag);
  }
  return cmd;
}

/// Farm campaign: supervised multi-process execution into per-worker shard
/// stores, merged byte-identically into `out`.
int cmd_campaign_farm(const Args& a, const avp::Testcase& tc,
                      const inject::CampaignConfig& cfg,
                      const std::string& out, const TelemetrySinks& sinks) {
  farm::FarmConfig fc;
  fc.workers = a.num_u32("workers", 2);
  // Fleet metrics on by default (cadence 32), matching `sfi serve`: the
  // coordinator's progress line and any scraper get the same fleet view a
  // daemon campaign would. 'M' frames are merge-dropped, so the canonical
  // store is byte-identical either way.
  fc.metrics_every = a.num_u32("metrics-every", 32);
  if (const auto hosts = a.str("farm")) {
    fc.hosts = farm::parse_hosts_file(*hosts);
    fc.worker_command = worker_command_from_args(a);
    if (a.opts.count("metrics-every") == 0 && fc.metrics_every > 0) {
      // The whitelist only forwards flags the user typed; the default
      // cadence has to reach exec workers explicitly.
      fc.worker_command.push_back("--metrics-every");
      fc.worker_command.push_back(std::to_string(fc.metrics_every));
    }
  }
  fc.shard_size = a.num_u32("shard-size", 64);
  fc.max_strikes = a.num_u32("strikes", 3);
  fc.watchdog_seconds = static_cast<double>(a.num("watchdog", 30));
  fc.sabotage = sabotage_from_args(a);
  fc.keep_shards = a.flag("keep-shards");
  fc.trace_spans = a.flag("trace-spans");
  fc.postmortem_path = postmortem_from_args(a);
  install_stop_handler();
  fc.should_stop = [] { return g_stop_requested != 0; };
  if (sinks.progress && sinks.tel) {
    inject::CampaignTelemetry* tel = sinks.get();
    fc.on_progress = [tel](const sched::Progress& p) {
      std::cerr << "\r[farm] "
                << tel->progress_line(p.done, p.total, p.executed,
                                      p.wall_seconds)
                << std::flush;
    };
  } else {
    fc.on_progress = [](const sched::Progress& p) {
      std::cerr << "\r[farm] " << p.done << "/" << p.total
                << " injections committed" << progress_rate_suffix(p)
                << std::flush;
    };
  }

  const farm::FarmResult r =
      farm::run_farm_campaign(tc, cfg, out, fc, a.flag("resume"));
  std::cerr << "\n";

  std::cout << report::section("farm campaign result");
  std::cout << "store: " << out << " ("
            << (r.complete ? "complete" : "INCOMPLETE — finish with --resume")
            << "); " << r.executed << " executed this run, " << r.resumed
            << " resumed\n";
  std::cout << "farm: " << r.workers_spawned << " worker(s) spawned, "
            << r.assignments << " assignment(s), " << r.worker_crashes
            << " crash(es), " << r.watchdog_kills << " watchdog kill(s), "
            << r.shard_retries << " shard retr" << (r.shard_retries == 1 ? "y" : "ies")
            << ", " << r.heartbeat_gaps << " heartbeat gap(s)\n";
  if (!r.harness_fatal.empty()) {
    std::cout << "harness-fatal injections (struck out after "
              << fc.max_strikes << " strikes):";
    for (const u32 i : r.harness_fatal) std::cout << " " << i;
    std::cout << "\n";
  }
  if (fc.trace_spans) {
    std::string base = out;
    if (base.size() > 4 && base.ends_with(".sfr")) base.resize(base.size() - 4);
    std::cout << "trace sidecar: " << base
              << ".trace.sfr (stitch with `sfi trace " << out << "`)\n";
  }
  std::cout << "workload: " << r.meta.workload_instructions
            << " instructions / " << r.meta.workload_cycles
            << " cycles; population " << r.meta.population_size
            << " latches; "
            << report::Table::num(r.injections_per_second(), 0)
            << " injections/s\n";
  sinks.write_outputs();
  std::cout << "\n";
  print_campaign_tables(r.agg, confidence_from(a));
  if (r.stopped) {
    print_resume_hint(out);
    return 130;
  }
  return 0;
}

/// Farm worker process: `sfi worker --shard-store FILE [--worker-id N]`.
/// Campaign flags mirror the coordinator's so both build the same plan.
int cmd_worker(const Args& a) {
  const auto shard = a.str("shard-store");
  if (!shard) throw CliError("worker requires --shard-store FILE.sfr");
  const avp::Testcase tc = make_testcase(a);
  const inject::CampaignConfig cfg = campaign_config(a, 1000);
  farm::WorkerOptions wo;
  wo.worker_id = a.num_u32("worker-id", 0);
  wo.shard_path = *shard;
  wo.control_fd = 0;  // assignments arrive on stdin
  wo.sabotage = sabotage_from_args(a);
  // Same default cadence as the farm coordinator and `sfi serve` (32): a
  // worker launched without the flag used to silently disable snapshots,
  // starving the coordinator's fleet metrics view of exec-spawned workers.
  wo.metrics_every =
      a.num_u32("metrics-every", farm::WorkerOptions{}.metrics_every);
  wo.trace_spans = a.flag("trace-spans");
  return farm::run_worker(tc, cfg, wo);
}

/// Scheduled (durable) campaign: stream records into a store file.
int cmd_campaign_to_store(const Args& a, const avp::Testcase& tc,
                          const inject::CampaignConfig& cfg,
                          const std::string& out,
                          const TelemetrySinks& sinks) {
  sched::SchedulerConfig sc;
  sc.shard_size = a.num_u32("shard-size", 64);
  sc.flush_records = a.num_u32("flush", 32);
  sc.max_new_injections = a.num("max-new", 0);
  (void)postmortem_from_args(a);  // in-process: dump on fatal signal only
  install_stop_handler();
  sc.should_stop = [] { return g_stop_requested != 0; };
  if (sinks.progress && sinks.tel) {
    inject::CampaignTelemetry* tel = sinks.get();
    sc.on_progress = [tel](const sched::Progress& p) {
      std::cerr << "\r[campaign] "
                << tel->progress_line(p.done, p.total, p.executed,
                                      p.wall_seconds)
                << std::flush;
    };
  } else {
    sc.on_progress = [](const sched::Progress& p) {
      std::cerr << "\r[campaign] " << p.done << "/" << p.total
                << " injections persisted" << progress_rate_suffix(p)
                << std::flush;
    };
  }

  const sched::ScheduledResult r =
      sched::run_campaign_to_store(tc, cfg, out, sc, a.flag("resume"));
  std::cerr << "\n";

  std::cout << report::section("campaign result");
  std::cout << "store: " << out << " ("
            << (r.complete ? "complete" : "INCOMPLETE — finish with --resume")
            << "); " << r.executed << " executed this run, " << r.resumed
            << " resumed, " << r.shards << " shards\n";
  if (cfg.footprint.enabled) {
    std::cout << "footprints: " << r.footprints
              << " propagation traces persisted (inspect with `sfi explain "
                 "--from "
              << out << "`)\n";
  }
  std::cout << "workload: " << r.meta.workload_instructions
            << " instructions / " << r.meta.workload_cycles
            << " cycles; population " << r.meta.population_size
            << " latches; "
            << report::Table::num(r.injections_per_second(), 0)
            << " injections/s\n";
  print_throughput(r.wall_seconds, r.cycles_evaluated,
                   r.cycles_fast_forwarded, r.checkpoint_ops, r.checkpoints,
                   r.checkpoint_bytes);
  sinks.write_outputs();
  std::cout << "\n";
  print_campaign_tables(r.agg, confidence_from(a));
  if (r.stopped) {
    print_resume_hint(out);
    return 130;
  }
  return 0;
}

int cmd_campaign(const Args& a) {
  const avp::Testcase tc = make_testcase(a);
  inject::CampaignConfig cfg = campaign_config(a, 1000);
  const TelemetrySinks sinks = make_telemetry(a);
  cfg.telemetry = sinks.get();

  const bool farm_mode =
      a.opts.count("workers") != 0 || a.opts.count("farm") != 0;
  if (const auto out = a.str("out")) {
    if (farm_mode) return cmd_campaign_farm(a, tc, cfg, *out, sinks);
    return cmd_campaign_to_store(a, tc, cfg, *out, sinks);
  }
  if (farm_mode) {
    throw CliError(
        "--workers/--farm require --out FILE.sfr (shards merge into it)");
  }
  if (a.flag("resume")) {
    throw CliError("--resume requires --out FILE (a store to resume into)");
  }

  const inject::CampaignResult r = inject::run_campaign(tc, cfg);
  if (sinks.progress && sinks.tel) {
    std::cerr << "[campaign] "
              << sinks.tel->progress_line(r.records.size(), r.records.size(),
                                          r.records.size(), r.wall_seconds)
              << "\n";
  }
  std::cout << report::section("campaign result");
  std::cout << "workload: " << r.workload_instructions << " instructions / "
            << r.workload_cycles << " cycles; population "
            << r.population_size << " latches; "
            << report::Table::num(r.injections_per_second(), 0)
            << " injections/s\n";
  print_throughput(r.wall_seconds, r.cycles_evaluated,
                   r.cycles_fast_forwarded, r.checkpoint_ops, r.checkpoints,
                   r.checkpoint_bytes);
  sinks.write_outputs();
  std::cout << "\n";
  print_campaign_tables(r.agg, confidence_from(a));
  return 0;
}

int cmd_report(const Args& a) {
  const auto from = a.str("from");
  if (!from) throw CliError("report requires --from FILE.sfr");

  const auto [meta, agg] = store::aggregate_store(*from);
  std::cout << report::section("campaign report (from store, no simulation)");
  std::cout << "store: " << *from << "; seed " << meta.seed << "; "
            << agg.total() << "/" << meta.num_injections << " records";
  if (agg.total() != meta.num_injections) {
    std::cout << " (INCOMPLETE — finish with `sfi campaign --out "
              << *from << " --resume`)";
  }
  std::cout << "\nworkload: " << meta.workload_instructions
            << " instructions / " << meta.workload_cycles
            << " cycles; population " << meta.population_size
            << " latches\n\n";
  print_campaign_tables(agg, confidence_from(a));
  return 0;
}

/// Median of an unsorted sample (0 when empty). Forensics latencies are
/// heavy-tailed, so medians, not means, go in the tables.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  if (v.size() % 2 == 1) return *mid;
  const double hi = *mid;
  const double lo = *std::max_element(v.begin(), mid);
  return (lo + hi) / 2.0;
}

/// Per-bucket forensic aggregate for `sfi explain` (buckets: origin unit, or
/// outcome class).
struct ExplainBucket {
  u64 traced = 0;
  u64 masked = 0;
  u64 detected = 0;
  u64 crossed = 0;       ///< infections that left their origin unit
  u64 reached_arch = 0;
  u64 reached_memory = 0;
  u64 truncated = 0;
  u64 checker_fired = 0;
  std::vector<double> mask_latency;
  std::vector<double> detection_latency;
  std::vector<double> peak_bits;

  void add(const inject::PropagationRecord& p) {
    ++traced;
    if (p.masked) {
      ++masked;
      mask_latency.push_back(static_cast<double>(p.masked_at));
    }
    if (p.detected) {
      ++detected;
      detection_latency.push_back(static_cast<double>(p.detected_at));
    }
    if (p.units_crossed() > 0) ++crossed;
    if (p.reached_arch) ++reached_arch;
    if (p.reached_memory) ++reached_memory;
    if (p.truncated) ++truncated;
    if (p.checker_fired) ++checker_fired;
    peak_bits.push_back(static_cast<double>(p.peak_bits));
  }
};

void explain_bucket_json(telemetry::JsonWriter& w, const std::string& label,
                         const char* label_key, const ExplainBucket& b) {
  w.begin_object()
      .field(label_key, label)
      .field("traced", b.traced)
      .field("masked", b.masked)
      .field("detected", b.detected)
      .field("crossed_units", b.crossed)
      .field("reached_arch", b.reached_arch)
      .field("reached_memory", b.reached_memory)
      .field("truncated", b.truncated)
      .field("checker_fired", b.checker_fired)
      .field("median_mask_latency", median_of(b.mask_latency))
      .field("median_detection_latency", median_of(b.detection_latency))
      .field("median_peak_bits", median_of(b.peak_bits))
      .end_object();
}

int cmd_explain(const Args& a) {
  const auto from = a.str("from");
  if (!from) throw CliError("explain requires --from FILE.sfr");

  // One pass over the store collects meta, the record count and every
  // propagation frame.
  store::StoreReader reader(*from, {});
  std::vector<inject::PropagationRecord> fps;
  u64 records = 0;
  {
    u8 kind = 0;
    std::vector<u8> payload;
    while (reader.next_frame(kind, payload)) {
      if (kind == store::kRecordFrame) {
        ++records;
      } else if (kind == store::kPropagationFrame) {
        fps.push_back(store::decode_propagation(payload));
      }
    }
  }
  std::sort(fps.begin(), fps.end(),
            [](const inject::PropagationRecord& x,
               const inject::PropagationRecord& y) { return x.index < y.index; });

  std::cout << report::section("fault-propagation forensics");
  std::cout << "store: " << *from << "; " << records << "/"
            << reader.meta().num_injections << " records, " << fps.size()
            << " propagation footprints\n";
  if (fps.empty()) {
    std::cout << "no footprints in this store — rerun the campaign with "
                 "`sfi campaign --footprint --out "
              << *from << "`\n";
    return 0;
  }

  std::array<ExplainBucket, netlist::kNumUnits> by_unit{};
  std::map<inject::Outcome, ExplainBucket> by_outcome;
  std::array<u64, core::kNumCheckers> checker_fires{};
  std::array<u64, core::kNumCheckers> checker_fatal{};
  u64 rerun_cycles = 0;
  for (const auto& p : fps) {
    by_unit[static_cast<std::size_t>(p.unit)].add(p);
    by_outcome[p.outcome].add(p);
    rerun_cycles += p.rerun_cycles;
    if (p.checker_fired) {
      const auto c = static_cast<std::size_t>(p.checker);
      ++checker_fires[c];
      if (p.checker_fatal) ++checker_fatal[c];
    }
  }

  std::cout << report::section("by origin unit");
  report::Table ut({"unit", "traced", "masked", "med mask lat", "crossed",
                    "reached arch", "reached mem", "med peak bits"});
  for (const auto u : netlist::kAllUnits) {
    const ExplainBucket& b = by_unit[static_cast<std::size_t>(u)];
    if (b.traced == 0) continue;
    ut.add_row({std::string(to_string(u)), report::Table::count(b.traced),
                report::Table::count(b.masked),
                report::Table::num(median_of(b.mask_latency), 0),
                report::Table::count(b.crossed),
                report::Table::count(b.reached_arch),
                report::Table::count(b.reached_memory),
                report::Table::num(median_of(b.peak_bits), 0)});
  }
  std::cout << ut.to_string();

  std::cout << report::section("by outcome class");
  report::Table ot({"outcome", "traced", "detected", "med detect lat",
                    "med peak bits", "truncated"});
  for (const auto o : inject::kAllOutcomes) {
    const auto it = by_outcome.find(o);
    if (it == by_outcome.end()) continue;
    const ExplainBucket& b = it->second;
    ot.add_row({std::string(to_string(o)), report::Table::count(b.traced),
                report::Table::count(b.detected),
                report::Table::num(median_of(b.detection_latency), 0),
                report::Table::num(median_of(b.peak_bits), 0),
                report::Table::count(b.truncated)});
  }
  std::cout << ot.to_string();

  report::Table ct({"checker", "fired", "fatal"});
  bool any_checker = false;
  for (std::size_t c = 0; c < core::kNumCheckers; ++c) {
    if (checker_fires[c] == 0) continue;
    any_checker = true;
    ct.add_row({std::string(core::checker_name(
                    static_cast<core::CheckerId>(c))),
                report::Table::count(checker_fires[c]),
                report::Table::count(checker_fatal[c])});
  }
  if (any_checker) {
    std::cout << report::section("first checker to fire (re-run)");
    std::cout << ct.to_string();
  }
  std::cout << "\nre-run cost: " << rerun_cycles
            << " cycles simulated for forensics\n";

  if (const auto json_out = a.str("json")) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("store", *from)
        .field("records", records)
        .field("footprints", static_cast<u64>(fps.size()))
        .field("rerun_cycles", rerun_cycles);
    w.key("by_unit").begin_array();
    for (const auto u : netlist::kAllUnits) {
      const ExplainBucket& b = by_unit[static_cast<std::size_t>(u)];
      if (b.traced == 0) continue;
      explain_bucket_json(w, std::string(to_string(u)), "unit", b);
    }
    w.end_array();
    w.key("by_outcome").begin_array();
    for (const auto& [o, b] : by_outcome) {
      explain_bucket_json(w, std::string(to_string(o)), "outcome", b);
    }
    w.end_array();
    w.key("checkers").begin_array();
    for (std::size_t c = 0; c < core::kNumCheckers; ++c) {
      if (checker_fires[c] == 0) continue;
      w.begin_object()
          .field("checker", std::string(core::checker_name(
                                static_cast<core::CheckerId>(c))))
          .field("fired", checker_fires[c])
          .field("fatal", checker_fatal[c])
          .end_object();
    }
    w.end_array();
    w.key("injections").begin_array();
    for (const auto& p : fps) {
      w.begin_object()
          .field("index", p.index)
          .field("unit", std::string(to_string(p.unit)))
          .field("type", std::string(to_string(p.type)))
          .field("outcome", std::string(to_string(p.outcome)))
          .field("fault_cycle", p.fault_cycle)
          .field("masked", p.masked)
          .field("detected", p.detected)
          .field("reached_arch", p.reached_arch)
          .field("reached_memory", p.reached_memory)
          .field("truncated", p.truncated)
          .field("peak_bits", p.peak_bits)
          .field("units_crossed", p.units_crossed())
          .field("rerun_cycles", p.rerun_cycles);
      if (p.masked) w.field("masked_at", p.masked_at);
      if (p.detected) w.field("detected_at", p.detected_at);
      if (p.checker_fired) {
        w.field("checker", std::string(core::checker_name(p.checker)))
            .field("checker_fatal", p.checker_fatal);
      }
      w.key("samples").begin_array();
      for (const auto& s : p.samples) {
        w.begin_array().value(s.offset).value(s.total_bits).end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array().end_object();
    std::ofstream out(*json_out, std::ios::trunc);
    if (!out) throw CliError("cannot open --json file " + *json_out);
    out << w.str() << "\n";
    std::cout << "json: " << *json_out << "\n";
  }

  if (const auto csv_out = a.str("csv")) {
    report::Table t({"index", "unit", "type", "outcome", "fault_cycle",
                     "masked", "masked_at", "detected", "detected_at",
                     "reached_arch", "reached_memory", "truncated", "checker",
                     "peak_bits", "units_crossed", "rerun_cycles", "samples"});
    for (const auto& p : fps) {
      std::string samples;
      for (const auto& s : p.samples) {
        if (!samples.empty()) samples += ' ';
        samples += std::to_string(s.offset) + ':' +
                   std::to_string(s.total_bits);
      }
      t.add_row({report::Table::count(p.index), std::string(to_string(p.unit)),
                 std::string(to_string(p.type)),
                 std::string(to_string(p.outcome)),
                 report::Table::count(p.fault_cycle),
                 p.masked ? "1" : "0",
                 p.masked ? report::Table::count(p.masked_at) : "",
                 p.detected ? "1" : "0",
                 p.detected ? report::Table::count(p.detected_at) : "",
                 p.reached_arch ? "1" : "0", p.reached_memory ? "1" : "0",
                 p.truncated ? "1" : "0",
                 p.checker_fired
                     ? std::string(core::checker_name(p.checker))
                     : "",
                 report::Table::count(p.peak_bits),
                 report::Table::count(p.units_crossed()),
                 report::Table::count(p.rerun_cycles), samples});
    }
    std::ofstream out(*csv_out, std::ios::trunc);
    if (!out) throw CliError("cannot open --csv file " + *csv_out);
    out << t.to_csv();
    std::cout << "csv: " << *csv_out << "\n";
  }
  return 0;
}

int cmd_merge(const Args& a) {
  const auto out = a.str("out");
  if (!out || a.positional.empty()) {
    throw CliError("merge requires --out MERGED.sfr and >=1 input stores");
  }
  const store::MergeSummary s = store::merge_stores(a.positional, *out);
  std::cout << report::section("store merge");
  std::cout << s.inputs << " shard(s), " << s.records_read
            << " records read, " << s.duplicates << " duplicate(s) collapsed"
            << "\n-> " << *out << ": " << s.records_written << "/"
            << s.meta.num_injections << " records";
  if (s.missing != 0) {
    std::cout << " (" << s.missing
              << " missing — resume the campaign to fill them)";
  }
  std::cout << "\n";
  return 0;
}

int cmd_beam(const Args& a) {
  // Beam accepts --engine for CLI symmetry but only the scalar engine is
  // valid: the lane engine's fast path *is* an internal-state observation
  // (diff-vs-reference convergence), which beam disables by design to model
  // physical irradiation, and array strikes diverge in aux state the latch
  // diff carrier can't see. See DESIGN.md §16 and beam.cpp.
  if (const auto e = a.str("engine")) {
    const auto kind = inject::parse_engine(*e);
    if (!kind) {
      throw CliError("unknown engine '" + *e + "' (expected scalar or lanes)");
    }
    if (*kind != inject::EngineKind::Scalar) {
      throw CliError(
          "beam supports --engine scalar only: beam classification is "
          "RAS/end-of-test observable-only (no internal-state convergence "
          "proof), which is the lane engine's entire fast path");
    }
  }
  const avp::Testcase tc = make_testcase(a);
  beam::BeamConfig cfg;
  cfg.seed = a.num("seed", 42);
  cfg.num_events = a.num_u32("n", 1000);
  cfg.threads = a.num_u32("threads", 0);
  cfg.core.checkers_enabled = !a.flag("raw");
  cfg.ckpt_interval = a.num("ckpt-interval", emu::kCkptAuto);
  cfg.ckpt_memory_budget = a.num("ckpt-mem", 64) << 20;
  const TelemetrySinks sinks = make_telemetry(a);
  cfg.telemetry = sinks.get();
  const beam::BeamResult r = beam::run_beam_experiment(tc, cfg);
  if (sinks.progress && sinks.tel) {
    std::cerr << "[beam] "
              << sinks.tel->progress_line(r.records.size(), r.records.size(),
                                          r.records.size(), r.wall_seconds)
              << "\n";
  }
  std::cout << report::section("beam exposure result");
  std::cout << r.latch_events << " latch strikes, " << r.array_events
            << " protected-array strikes\n\n";
  print_outcomes(r.counts(), confidence_from(a));
  sinks.write_outputs();
  return 0;
}

/// `sfi trace STORE.sfr [--out trace.json]`: stitch the distributed span
/// plane of a campaign — the store itself, its `.trace.sfr` sidecar, any
/// surviving worker shards, and postmortem JSONL dumps — into one Trace
/// Event JSON file (load it in Perfetto / chrome://tracing). One process
/// row per OS process; clocks line up because every span is wall-anchored
/// at its source.
int cmd_trace_stitch(const Args& a) {
  const std::string& store_path = a.positional.front();
  const store::StitchResult r = store::stitch_trace(store_path);
  const std::string out = a.str("out").value_or("trace.json");
  {
    std::ofstream f(out, std::ios::trunc | std::ios::binary);
    if (!f) throw std::runtime_error("trace: cannot write " + out);
    f << r.json << "\n";
  }
  std::cout << "stitched " << r.spans << " span(s) from " << r.files
            << " file(s), " << r.processes << " process row(s) -> " << out
            << " (load in Perfetto / chrome://tracing)\n";
  if (r.spans == 0) {
    std::cout << "hint: record spans with `sfi campaign --workers N "
                 "--trace-spans` or a daemon farm campaign\n";
  }
  return 0;
}

int cmd_trace(const Args& a) {
  // Positional store argument => stitch mode; --latch => single-fault
  // cause-to-effect trace (the original verb).
  if (!a.positional.empty()) return cmd_trace_stitch(a);
  const auto latch = a.str("latch");
  if (!latch) {
    throw CliError(
        "trace requires --latch NAME[:BIT] (single-fault trace) or a "
        "positional STORE.sfr (stitch the campaign's span plane)");
  }
  std::string name = *latch;
  u32 bit = 0;
  if (const auto colon = name.find(':'); colon != std::string::npos) {
    bit = static_cast<u32>(parse_u64("latch", name.substr(colon + 1)));
    name = name.substr(0, colon);
  }

  const avp::Testcase tc = make_testcase(a);
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();

  const auto ords = model.registry().collect_ordinals(
      [&](const netlist::LatchMeta& m) { return m.name == name; });
  if (ords.empty()) {
    std::cerr << "no latch named '" << name
              << "' (try `sfi inventory` and the DESIGN.md naming scheme)\n";
    return 2;
  }
  if (bit >= ords.size()) {
    std::cerr << "latch " << name << " has " << ords.size() << " bits\n";
    return 2;
  }

  inject::FaultSpec f;
  f.index = ords[bit];
  f.cycle = a.num("cycle", 30);
  if (const auto d = a.num("sticky", 0); d != 0) {
    f.mode = inject::FaultMode::Sticky;
    f.sticky_duration = d;
    f.sticky_value = true;
  }
  const auto t = inject::trace_injection(model, emu, cp, trace, golden, f);
  std::cout << inject::format_trace(t);
  return 0;
}

int cmd_derate(const Args& a) {
  const avp::Testcase tc = make_testcase(a);
  const inject::CampaignConfig cfg = campaign_config(a, 2000);
  const inject::CampaignResult r = inject::run_campaign(tc, cfg);

  core::Pearl6Model model;
  inject::DeratingConfig dc;
  const inject::DeratingReport rep =
      inject::compute_derating(r, model.registry(), dc);

  std::cout << report::section("derating & FIT budget");
  std::cout << rep.summary() << "\n";
  report::Table t({"unit", "latches", "derating", "severe rate",
                   "severe FIT"});
  for (const auto& u : rep.by_unit) {
    t.add_row({std::string(to_string(u.unit)),
               report::Table::count(u.latch_bits),
               report::Table::pct(u.derating),
               report::Table::pct(u.severe_rate),
               report::Table::num(u.severe_fit, 6)});
  }
  std::cout << t.to_string();
  return 0;
}

int cmd_mix(const Args& a) {
  const avp::Testcase tc = make_testcase(a);
  const avp::MixReport rep = avp::measure_mix(tc);
  std::cout << report::section("AVP instruction mix & CPI");
  report::Table t({"class", "fraction"});
  for (std::size_t c = 0; c < isa::kNumInstrClasses; ++c) {
    t.add_row({std::string(to_string(static_cast<isa::InstrClass>(c))),
               report::Table::pct(rep.fractions[c], 1)});
  }
  std::cout << t.to_string();
  std::cout << "\n" << rep.instructions << " instructions in " << rep.cycles
            << " cycles: CPI " << report::Table::num(rep.cpi) << "\n";
  return 0;
}

// --- serve: campaign daemon + clients --------------------------------------

int cmd_serve(const Args& a) {
  const auto state_dir = a.str("state-dir");
  if (!state_dir) throw CliError("serve requires --state-dir DIR");
  serve::ServeConfig sc;
  sc.state_dir = *state_dir;
  if (const auto l = a.str("listen")) sc.listen = *l;
  sc.max_active = a.num_u32("max-active", 2);
  sc.default_threads = a.num_u32("campaign-threads", 1);
  if (const auto h = a.str("http")) sc.http = *h;
  sc.metrics_every = a.num_u32("metrics-every", 32);
  install_stop_handler();
  sc.should_stop = [] { return g_stop_requested != 0; };
  serve::Daemon d(sc);
  std::cout << "sfi serve: listening on " << d.address().describe()
            << "; state dir " << *state_dir << "; max active "
            << sc.max_active;
  if (d.http_enabled()) {
    std::cout << "; http " << d.http_address().describe()
              << " (/metrics /healthz /campaigns /trace)";
  }
  std::cout << "\n" << std::flush;
  return d.run();
}

serve::Address client_address(const Args& a) {
  const auto spec = a.str("connect");
  if (!spec) {
    throw CliError("requires --connect ADDR (unix:PATH or tcp:HOST:PORT)");
  }
  return serve::parse_address(*spec);
}

int cmd_submit(const Args& a) {
  farm::ignore_sigpipe();
  // Build (and strictly parse) the request before touching the socket so a
  // usage error is reported as such even when no daemon is listening.
  const serve::Address addr = client_address(a);
  // Validate the engine name client-side so a typo is a usage error here,
  // not a silently-defaulted daemon campaign. ("engine" in status replies
  // names the dispatch mode, farm/sched — hence "inj_engine" on the wire.)
  const std::string engine = a.str("engine").value_or("scalar");
  if (!inject::parse_engine(engine)) {
    throw CliError("unknown engine '" + engine +
                   "' (expected scalar or lanes)");
  }
  telemetry::JsonWriter w;
  w.begin_object()
      .field("op", "submit")
      .field("tenant", a.str("tenant").value_or("default"))
      .field("seed", a.num("seed", 42))
      .field("testcase_seed", a.num("testcase-seed", 2026))
      .field("instructions", a.num("instructions", 160))
      .field("n", a.num("n", 1000))
      .field("confidence", confidence_from(a))
      .field("half_width", a.fnum("half-width", 0.02))
      .field("by_unit", a.flag("stratify-unit"))
      .field("threads", a.num("threads", 0))
      .field("workers", a.num("workers", 0))
      .field("shard_size", a.num("shard-size", 16))
      .field("flush_records", a.num("flush", 8))
      .field("inj_engine", engine)
      .field("lanes", a.num_u32("lanes", 64))
      .end_object();
  serve::LineChannel ch(serve::connect_to(addr));
  if (!ch.send_line(w.str())) {
    throw std::runtime_error("submit: daemon closed the connection");
  }
  std::string reply;
  if (!ch.recv_line(reply)) {
    throw std::runtime_error("submit: no reply from daemon");
  }
  std::cout << reply << "\n" << std::flush;
  const serve::Json r = serve::Json::parse(reply);
  if (!r.get_bool("ok", false)) return 1;
  if (!a.flag("wait")) return 0;

  // --wait: follow the campaign's event stream on the same connection until
  // the daemon finishes it (the final line is the "finish" report event).
  telemetry::JsonWriter watch;
  watch.begin_object()
      .field("op", "watch")
      .field("id", r.get_u64("id", 0))
      .end_object();
  if (!ch.send_line(watch.str())) {
    throw std::runtime_error("submit --wait: daemon closed the connection");
  }
  std::string line;
  while (ch.recv_line(line)) std::cout << line << "\n" << std::flush;
  return 0;
}

int cmd_status(const Args& a) {
  farm::ignore_sigpipe();
  serve::LineChannel ch(serve::connect_to(client_address(a)));
  if (!ch.send_line(R"({"op":"status"})")) {
    throw std::runtime_error("status: daemon closed the connection");
  }
  std::string reply;
  if (!ch.recv_line(reply)) {
    throw std::runtime_error("status: no reply from daemon");
  }
  if (a.flag("json")) {
    std::cout << reply << "\n";
    return 0;
  }
  const serve::Json r = serve::Json::parse(reply);
  if (!r.get_bool("ok", false)) {
    std::cout << reply << "\n";
    return 1;
  }
  std::cout << report::section("serve status");
  report::Table t({"id", "tenant", "state", "records", "widest hw", "target",
                   "early stop"});
  if (const serve::Json* cs = r.find("campaigns")) {
    for (const serve::Json& c : cs->items()) {
      const double widest = c.get_num("widest_half_width", -1.0);
      t.add_row({std::to_string(c.get_u64("id", 0)),
                 c.get_str("tenant", "?"), c.get_str("state", "?"),
                 std::to_string(c.get_u64("done", 0)) + "/" +
                     std::to_string(c.get_u64("n", 0)),
                 widest < 0.0 ? "-" : report::Table::num(widest, 4),
                 report::Table::num(c.get_num("target_half_width", 0.0), 4),
                 c.get_bool("early_stop", false)
                     ? "@" + std::to_string(c.get_u64("stop_point", 0))
                     : "-"});
    }
  }
  std::cout << t.to_string();
  return 0;
}

int cmd_watch(const Args& a) {
  farm::ignore_sigpipe();
  const u64 id = a.num("id", 0);
  if (id == 0) throw CliError("watch requires --id N");
  serve::LineChannel ch(serve::connect_to(client_address(a)));
  telemetry::JsonWriter w;
  w.begin_object().field("op", "watch").field("id", id).end_object();
  if (!ch.send_line(w.str())) {
    throw std::runtime_error("watch: daemon closed the connection");
  }
  std::string line;
  int rc = 0;
  while (ch.recv_line(line)) {
    std::cout << line << "\n" << std::flush;
    if (line.rfind("{\"ok\":false", 0) == 0) rc = 1;
  }
  return rc;
}

/// One blocking HTTP/1.1 GET against the daemon's observability listener;
/// returns the response body. Enough protocol for our own server (and any
/// other that honours Connection: close).
std::string http_get(const serve::Address& addr, const std::string& path) {
  const int fd = serve::connect_to(addr);
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: sfi\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("http: send failed to " + addr.describe());
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t hdr = resp.find("\r\n\r\n");
  if (hdr == std::string::npos) {
    throw std::runtime_error("http: malformed response from " +
                             addr.describe());
  }
  if (resp.rfind("HTTP/1.1 200", 0) != 0) {
    throw std::runtime_error("http: " + resp.substr(0, resp.find("\r\n")));
  }
  return resp.substr(hdr + 4);
}

/// `sfi top`: a terminal dashboard over GET /campaigns — one row per
/// campaign with live rate (from successive polls), ETA, half-width
/// progress and the outcome mix. Read-only by construction: it talks to
/// the same endpoint Prometheus scrapes.
int cmd_top(const Args& a) {
  farm::ignore_sigpipe();
  const auto spec = a.str("http");
  if (!spec) {
    throw CliError("top requires --http ADDR (the daemon's --http address)");
  }
  const serve::Address addr = serve::parse_address(*spec);
  const double interval = a.fnum("interval", 2.0);
  const bool once = a.flag("once");
  const bool json = a.flag("json");
  install_stop_handler();

  struct Seen {
    u64 done = 0;
    std::chrono::steady_clock::time_point at;
  };
  std::map<u64, Seen> last;
  while (g_stop_requested == 0) {
    const std::string body = http_get(addr, "/campaigns");
    const serve::Json r = serve::Json::parse(body);
    const auto now = std::chrono::steady_clock::now();
    if (json) {
      // Machine-readable refresh: one JSON object per line — the daemon's
      // /campaigns document plus the rates/ETAs this dashboard computes
      // from successive polls. No screen control, ever.
      telemetry::JsonWriter w;
      w.begin_object()
          .field("endpoint", addr.describe())
          .field("stopping", r.get_bool("stopping", false));
      w.key("campaigns").begin_array();
      if (const serve::Json* cs = r.find("campaigns")) {
        for (const serve::Json& c : cs->items()) {
          const u64 id = c.get_u64("id", 0);
          const u64 done = c.get_u64("done", 0);
          const u64 n = c.get_u64("n", 0);
          double rate = 0.0;
          if (const auto it = last.find(id); it != last.end()) {
            const double dt =
                std::chrono::duration<double>(now - it->second.at).count();
            if (dt > 0.0 && done >= it->second.done) {
              rate = static_cast<double>(done - it->second.done) / dt;
            }
          }
          last[id] = {done, now};
          w.begin_object()
              .field("id", id)
              .field("tenant", c.get_str("tenant", "?"))
              .field("state", c.get_str("state", "?"))
              .field("engine", c.get_str("engine", "?"))
              .field("done", done)
              .field("n", n)
              .field("committed", c.get_u64("committed", 0))
              .field("rate_per_s", rate)
              .field("eta_s", rate > 0.0 && n > done
                                  ? static_cast<double>(n - done) / rate
                                  : -1.0)
              .field("widest_half_width",
                     c.get_num("widest_half_width", -1.0))
              .field("target_half_width",
                     c.get_num("target_half_width", 0.0))
              .field("early_stop", c.get_bool("early_stop", false))
              .field("workers", c.get_u64("workers", 0))
              .end_object();
        }
      }
      w.end_array().end_object();
      std::cout << w.str() << "\n" << std::flush;
      if (once) return 0;
      const auto deadline =
          now +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval));
      while (g_stop_requested == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    if (!once) std::cout << "\x1b[H\x1b[2J";  // cursor home + clear screen
    std::cout << "sfi top — " << addr.describe()
              << (r.get_bool("stopping", false) ? " (stopping)" : "") << "\n";
    report::Table t({"id", "tenant", "state", "eng", "done", "rate/s", "eta",
                     "hw/target", "wrk", "outcome mix"});
    if (const serve::Json* cs = r.find("campaigns")) {
      for (const serve::Json& c : cs->items()) {
        const u64 id = c.get_u64("id", 0);
        const u64 done = c.get_u64("done", 0);
        const u64 n = c.get_u64("n", 0);
        const std::string state = c.get_str("state", "?");
        double rate = 0.0;
        if (const auto it = last.find(id); it != last.end()) {
          const double dt =
              std::chrono::duration<double>(now - it->second.at).count();
          if (dt > 0.0 && done >= it->second.done) {
            rate = static_cast<double>(done - it->second.done) / dt;
          }
        }
        last[id] = {done, now};
        std::string eta = "-";
        if (state == "running" && rate > 0.0 && n > done) {
          eta = report::Table::num(static_cast<double>(n - done) / rate, 0) +
                "s";
        }
        const double widest = c.get_num("widest_half_width", -1.0);
        std::string hw =
            (widest < 0.0 ? std::string("-")
                          : report::Table::num(widest, 4)) +
            "/" +
            report::Table::num(c.get_num("target_half_width", 0.0), 4);
        if (c.get_bool("early_stop", false)) hw += " met";
        std::string mix;
        if (const serve::Json* counts = c.find("counts")) {
          u64 total = 0;
          for (const auto o : inject::kAllOutcomes) {
            total += counts->get_u64(std::string(to_string(o)), 0);
          }
          for (const auto o : inject::kAllOutcomes) {
            const u64 v = counts->get_u64(std::string(to_string(o)), 0);
            if (v == 0) continue;
            std::string lbl(to_string(o).substr(0, 3));
            for (char& ch : lbl) {
              ch = static_cast<char>(
                  std::tolower(static_cast<unsigned char>(ch)));
            }
            if (!mix.empty()) mix += ' ';
            mix += lbl + ' ' +
                   report::Table::pct(static_cast<double>(v) /
                                      static_cast<double>(total));
          }
        }
        t.add_row({std::to_string(id), c.get_str("tenant", "?"), state,
                   c.get_str("engine", "?"),
                   std::to_string(done) + "/" + std::to_string(n),
                   report::Table::num(rate, 1), eta, hw,
                   std::to_string(c.get_u64("workers", 0)), mix});
      }
    }
    std::cout << t.to_string() << std::flush;
    if (once) return 0;
    // Sleep in slices so Ctrl-C lands promptly, not a poll later.
    const auto deadline =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(interval));
    while (g_stop_requested == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}

int cmd_shutdown(const Args& a) {
  farm::ignore_sigpipe();
  serve::LineChannel ch(serve::connect_to(client_address(a)));
  if (!ch.send_line(R"({"op":"shutdown"})")) {
    throw std::runtime_error("shutdown: daemon closed the connection");
  }
  std::string reply;
  if (ch.recv_line(reply)) std::cout << reply << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "inventory") return cmd_inventory();
    if (a.command == "campaign") return cmd_campaign(a);
    if (a.command == "worker") return cmd_worker(a);
    if (a.command == "report") return cmd_report(a);
    if (a.command == "explain") return cmd_explain(a);
    if (a.command == "merge") return cmd_merge(a);
    if (a.command == "beam") return cmd_beam(a);
    if (a.command == "trace") return cmd_trace(a);
    if (a.command == "mix") return cmd_mix(a);
    if (a.command == "derate") return cmd_derate(a);
    if (a.command == "serve") return cmd_serve(a);
    if (a.command == "submit") return cmd_submit(a);
    if (a.command == "status") return cmd_status(a);
    if (a.command == "watch") return cmd_watch(a);
    if (a.command == "shutdown") return cmd_shutdown(a);
    if (a.command == "top") return cmd_top(a);
  } catch (const CliError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
