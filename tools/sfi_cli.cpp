// sfi — the command-line front end of the Statistical Fault Injection
// framework.
//
//   sfi inventory                          latch/array population report
//   sfi campaign [options]                 run a fault-injection campaign
//   sfi beam     [options]                 run a simulated beam exposure
//   sfi trace    --latch NAME [options]    trace one fault cause→effect
//   sfi mix      [options]                 AVP instruction mix & CPI
//   sfi derate   [options]                 derating factors & FIT budget
//
// Common options:
//   --seed N              experiment seed               (default 42)
//   --testcase-seed N     AVP workload seed             (default 2026)
//   --instructions N      AVP testcase length           (default 160)
// Campaign/beam options:
//   --n N                 injections / beam events      (default 1000)
//   --threads N           worker threads                (default: hw)
//   --unit U              restrict to one unit (IFU..RUT, Core)
//   --type T              restrict to one latch type (FUNC/REGFILE/MODE/GPTR)
//   --raw                 mask all core checkers (Table 3 "Raw")
//   --sticky D            sticky faults of D cycles instead of toggles
// Trace options:
//   --latch NAME[:BIT]    latch (by hierarchical name) to flip
//   --cycle C             injection cycle               (default 30)
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "avp/testgen.hpp"
#include "beam/beam.hpp"
#include "report/table.hpp"
#include "sfi/campaign.hpp"
#include "sfi/derating.hpp"
#include "sfi/tracer.hpp"
#include "workload/spec_profiles.hpp"

namespace {

using namespace sfi;

struct Args {
  std::string command;
  std::map<std::string, std::string> opts;
  bool raw = false;

  [[nodiscard]] u64 num(const std::string& key, u64 dflt) const {
    const auto it = opts.find(key);
    return it == opts.end() ? dflt : std::stoull(it->second, nullptr, 0);
  }
  [[nodiscard]] std::optional<std::string> str(const std::string& key) const {
    const auto it = opts.find(key);
    if (it == opts.end()) return std::nullopt;
    return it->second;
  }
};

int usage() {
  std::cout <<
      R"(usage: sfi <command> [options]
commands:
  inventory   latch/array population report
  campaign    run a statistical fault-injection campaign
  beam        run a simulated proton-beam exposure
  trace       trace one injected fault from cause to effect
  mix         AVP instruction mix and CPI report
  derate      derating factors & chip FIT budget from a campaign
run `head -30 tools/sfi_cli.cpp` for the full option list.
)";
  return 2;
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) return a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (key == "raw") {
      a.raw = true;
    } else if (i + 1 < argc) {
      a.opts[key] = argv[++i];
    }
  }
  return a;
}

avp::Testcase make_testcase(const Args& a) {
  avp::TestcaseConfig cfg;
  cfg.seed = a.num("testcase-seed", 2026);
  cfg.num_instructions = static_cast<u32>(a.num("instructions", 160));
  return avp::generate_testcase(cfg);
}

std::optional<netlist::Unit> parse_unit(const std::string& s) {
  for (const auto u : netlist::kAllUnits) {
    if (s == to_string(u)) return u;
  }
  return std::nullopt;
}

std::optional<netlist::LatchType> parse_type(const std::string& s) {
  for (const auto t : netlist::kAllLatchTypes) {
    if (s == to_string(t)) return t;
  }
  return std::nullopt;
}

void print_outcomes(const inject::OutcomeCounts& counts) {
  report::Table t({"outcome", "count", "fraction", "95% CI"});
  for (const auto o : inject::kAllOutcomes) {
    const auto iv = counts.interval(o);
    t.add_row({std::string(to_string(o)), report::Table::count(counts.of(o)),
               report::Table::pct(counts.fraction(o)),
               "[" + report::Table::pct(iv.low) + ", " +
                   report::Table::pct(iv.high) + "]"});
  }
  std::cout << t.to_string();
}

int cmd_inventory() {
  core::Pearl6Model model;
  const auto& reg = model.registry();

  std::cout << report::section("latch inventory");
  report::Table by_unit({"unit", "latch bits", "share"});
  const auto units = reg.latch_count_by_unit();
  for (const auto u : netlist::kAllUnits) {
    const auto idx = static_cast<std::size_t>(u);
    by_unit.add_row({std::string(to_string(u)),
                     report::Table::count(units[idx]),
                     report::Table::pct(static_cast<double>(units[idx]) /
                                        reg.num_latches())});
  }
  std::cout << by_unit.to_string() << "\n";

  report::Table by_type({"latch type", "latch bits", "share"});
  const auto types = reg.latch_count_by_type();
  for (const auto t : netlist::kAllLatchTypes) {
    const auto idx = static_cast<std::size_t>(t);
    by_type.add_row({std::string(to_string(t)),
                     report::Table::count(types[idx]),
                     report::Table::pct(static_cast<double>(types[idx]) /
                                        reg.num_latches())});
  }
  std::cout << by_type.to_string() << "\n";

  std::cout << "total injectable latch bits: " << reg.num_latches() << " in "
            << reg.num_fields() << " named fields\n";
  std::cout << "protected array bits (beam targets): "
            << model.arrays().total_storage_bits() << " across "
            << model.arrays().num_arrays() << " arrays\n";
  std::cout << "main-store storage bits (periphery targets): "
            << model.memory().storage_bits() << "\n";
  return 0;
}

int cmd_campaign(const Args& a) {
  const avp::Testcase tc = make_testcase(a);
  inject::CampaignConfig cfg;
  cfg.seed = a.num("seed", 42);
  cfg.num_injections = static_cast<u32>(a.num("n", 1000));
  cfg.threads = static_cast<u32>(a.num("threads", 0));
  cfg.core.checkers_enabled = !a.raw;
  if (const auto d = a.num("sticky", 0); d != 0) {
    cfg.mode = inject::FaultMode::Sticky;
    cfg.sticky_duration = d;
  }
  if (const auto u = a.str("unit")) {
    const auto unit = parse_unit(*u);
    if (!unit) {
      std::cerr << "unknown unit " << *u << "\n";
      return 2;
    }
    cfg.filter = [unit](const netlist::LatchMeta& m) {
      return m.unit == *unit;
    };
  } else if (const auto t = a.str("type")) {
    const auto type = parse_type(*t);
    if (!type) {
      std::cerr << "unknown latch type " << *t << "\n";
      return 2;
    }
    cfg.filter = [type](const netlist::LatchMeta& m) {
      return m.type == *type;
    };
  }

  const inject::CampaignResult r = inject::run_campaign(tc, cfg);
  std::cout << report::section("campaign result");
  std::cout << "workload: " << r.workload_instructions << " instructions / "
            << r.workload_cycles << " cycles; population "
            << r.population_size << " latches; "
            << report::Table::num(r.injections_per_second(), 0)
            << " injections/s\n\n";
  print_outcomes(r.counts);

  std::cout << report::section("by unit");
  report::Table t({"unit", "flips", "vanished", "corrected", "severe"});
  for (const auto u : netlist::kAllUnits) {
    const auto& c = r.by_unit[static_cast<std::size_t>(u)];
    if (c.total() == 0) continue;
    t.add_row({std::string(to_string(u)), report::Table::count(c.total()),
               report::Table::pct(c.fraction(inject::Outcome::Vanished)),
               report::Table::pct(c.fraction(inject::Outcome::Corrected)),
               report::Table::pct(c.fraction(inject::Outcome::Hang) +
                                  c.fraction(inject::Outcome::Checkstop) +
                                  c.fraction(inject::Outcome::BadArchState))});
  }
  std::cout << t.to_string();
  return 0;
}

int cmd_beam(const Args& a) {
  const avp::Testcase tc = make_testcase(a);
  beam::BeamConfig cfg;
  cfg.seed = a.num("seed", 42);
  cfg.num_events = static_cast<u32>(a.num("n", 1000));
  cfg.threads = static_cast<u32>(a.num("threads", 0));
  cfg.core.checkers_enabled = !a.raw;
  const beam::BeamResult r = beam::run_beam_experiment(tc, cfg);
  std::cout << report::section("beam exposure result");
  std::cout << r.latch_events << " latch strikes, " << r.array_events
            << " protected-array strikes\n\n";
  print_outcomes(r.counts);
  return 0;
}

int cmd_trace(const Args& a) {
  const auto latch = a.str("latch");
  if (!latch) {
    std::cerr << "trace requires --latch NAME[:BIT]\n";
    return 2;
  }
  std::string name = *latch;
  u32 bit = 0;
  if (const auto colon = name.find(':'); colon != std::string::npos) {
    bit = static_cast<u32>(std::stoul(name.substr(colon + 1)));
    name = name.substr(0, colon);
  }

  const avp::Testcase tc = make_testcase(a);
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();

  const auto ords = model.registry().collect_ordinals(
      [&](const netlist::LatchMeta& m) { return m.name == name; });
  if (ords.empty()) {
    std::cerr << "no latch named '" << name
              << "' (try `sfi inventory` and the DESIGN.md naming scheme)\n";
    return 2;
  }
  if (bit >= ords.size()) {
    std::cerr << "latch " << name << " has " << ords.size() << " bits\n";
    return 2;
  }

  inject::FaultSpec f;
  f.index = ords[bit];
  f.cycle = a.num("cycle", 30);
  if (const auto d = a.num("sticky", 0); d != 0) {
    f.mode = inject::FaultMode::Sticky;
    f.sticky_duration = d;
    f.sticky_value = true;
  }
  const auto t = inject::trace_injection(model, emu, cp, trace, golden, f);
  std::cout << inject::format_trace(t);
  return 0;
}

int cmd_derate(const Args& a) {
  const avp::Testcase tc = make_testcase(a);
  inject::CampaignConfig cfg;
  cfg.seed = a.num("seed", 42);
  cfg.num_injections = static_cast<u32>(a.num("n", 2000));
  cfg.threads = static_cast<u32>(a.num("threads", 0));
  const inject::CampaignResult r = inject::run_campaign(tc, cfg);

  core::Pearl6Model model;
  inject::DeratingConfig dc;
  const inject::DeratingReport rep =
      inject::compute_derating(r, model.registry(), dc);

  std::cout << report::section("derating & FIT budget");
  std::cout << rep.summary() << "\n";
  report::Table t({"unit", "latches", "derating", "severe rate",
                   "severe FIT"});
  for (const auto& u : rep.by_unit) {
    t.add_row({std::string(to_string(u.unit)),
               report::Table::count(u.latch_bits),
               report::Table::pct(u.derating),
               report::Table::pct(u.severe_rate),
               report::Table::num(u.severe_fit, 6)});
  }
  std::cout << t.to_string();
  return 0;
}

int cmd_mix(const Args& a) {
  const avp::Testcase tc = make_testcase(a);
  const avp::MixReport rep = avp::measure_mix(tc);
  std::cout << report::section("AVP instruction mix & CPI");
  report::Table t({"class", "fraction"});
  for (std::size_t c = 0; c < isa::kNumInstrClasses; ++c) {
    t.add_row({std::string(to_string(static_cast<isa::InstrClass>(c))),
               report::Table::pct(rep.fractions[c], 1)});
  }
  std::cout << t.to_string();
  std::cout << "\n" << rep.instructions << " instructions in " << rep.cycles
            << " cycles: CPI " << report::Table::num(rep.cpi) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "inventory") return cmd_inventory();
    if (a.command == "campaign") return cmd_campaign(a);
    if (a.command == "beam") return cmd_beam(a);
    if (a.command == "trace") return cmd_trace(a);
    if (a.command == "mix") return cmd_mix(a);
    if (a.command == "derate") return cmd_derate(a);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
